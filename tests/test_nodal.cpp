// Tests for the factorization-cached nodal IR-drop solver: agreement with
// the Gauss-Seidel reference across shapes (including degenerate and
// non-square arrays, faults and aged cells), the invalidation contract on
// program/fault/age, batched-vs-single bit-equality, thread-count invariance
// of readout_batch, and the per-call SolveStatus reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fault/fault_map.hpp"
#include "mann/lsh.hpp"
#include "util/matrix.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/nodal_solver.hpp"
#include "xbar/tiled.hpp"

namespace xlds {
namespace {

class NodalTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

xbar::CrossbarConfig quiet_config(std::size_t rows, std::size_t cols) {
  xbar::CrossbarConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.ir_drop = xbar::IrDropMode::kNodal;
  // Give the iterative reference enough budget to actually converge on the
  // denser shapes; the direct path does not consume it.
  cfg.nodal_max_iters = 50000;
  return cfg;
}

MatrixD mixed_conductances(std::size_t rows, std::size_t cols, const device::RramParams& p,
                           std::uint64_t seed) {
  MatrixD g(rows, cols, p.g_min);
  Rng fill(seed);
  for (double& v : g.data())
    if (fill.bernoulli(0.5)) v = p.g_max;
  return g;
}

std::vector<double> ramp_input(std::size_t rows) {
  std::vector<double> x(rows);
  for (std::size_t r = 0; r < rows; ++r)
    x[r] = 0.1 + 0.8 * static_cast<double>(r) / static_cast<double>(std::max<std::size_t>(rows - 1, 1));
  return x;
}

// Direct and Gauss-Seidel answers agree within the iterative solver's real
// accuracy.  The direct solve is machine-precision; Gauss-Seidel stops when
// the last sweep's update drops below kNodalTolRel * V, which bounds the
// remaining solution error only up to the convergence-rate amplification
// (error ~ update / (1 - rho), with rho near 1 on the larger arrays) — a few
// parts in 1e4 of the column magnitude in practice.
void expect_currents_close(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  double scale = 0.0;
  for (double v : a) scale = std::max(scale, std::abs(v));
  ASSERT_GT(scale, 0.0);
  for (std::size_t c = 0; c < a.size(); ++c)
    EXPECT_NEAR(a[c], b[c], 1e-3 * scale) << "column " << c;
}

// ---- factorized vs Gauss-Seidel across shapes -------------------------------

struct ShapeCase {
  std::size_t rows, cols;
};

class NodalShapeTest : public NodalTest, public ::testing::WithParamInterface<ShapeCase> {};

TEST_P(NodalShapeTest, DirectMatchesGaussSeidel) {
  const auto [rows, cols] = GetParam();
  auto cfg = quiet_config(rows, cols);
  const MatrixD g = mixed_conductances(rows, cols, cfg.rram, 7 + rows * 131 + cols);
  const std::vector<double> x = ramp_input(rows);

  Rng r1(3);
  xbar::Crossbar direct(cfg, r1);
  direct.program_conductances(g);
  xbar::SolveStatus ds;
  const auto i_direct = direct.column_currents(x, ds);
  EXPECT_TRUE(ds.direct);
  EXPECT_TRUE(ds.converged);
  EXPECT_EQ(ds.iterations, 0u);
  EXPECT_FALSE(ds.used_fallback);
  // The factorized residual must beat the Gauss-Seidel acceptance bar.
  EXPECT_LT(ds.residual, xbar::kNodalTolRel * cfg.read_voltage);
  EXPECT_TRUE(direct.nodal_factorized());

  cfg.nodal_direct = false;
  Rng r2(3);
  xbar::Crossbar gs(cfg, r2);
  gs.program_conductances(g);
  xbar::SolveStatus gss;
  const auto i_gs = gs.column_currents(x, gss);
  ASSERT_TRUE(gss.converged);
  EXPECT_FALSE(gss.direct);
  EXPECT_GT(gss.iterations, 0u);

  expect_currents_close(i_direct, i_gs);
}

INSTANTIATE_TEST_SUITE_P(Shapes, NodalShapeTest,
                         ::testing::Values(ShapeCase{1, 1}, ShapeCase{1, 8}, ShapeCase{8, 1},
                                           ShapeCase{16, 16}, ShapeCase{64, 64},
                                           ShapeCase{48, 32}, ShapeCase{32, 48}),
                         [](const ::testing::TestParamInfo<ShapeCase>& info) {
                           return std::to_string(info.param.rows) + "x" +
                                  std::to_string(info.param.cols);
                         });

// ---- agreement with faults and aged cells -----------------------------------

TEST_F(NodalTest, DirectMatchesGaussSeidelWithFaultsAndAging) {
  auto cfg = quiet_config(24, 24);
  const MatrixD g = mixed_conductances(24, 24, cfg.rram, 99);

  const auto prepare = [&](xbar::Crossbar& xb) {
    xb.program_conductances(g);
    xb.inject_stuck_fault(0, 0, cfg.rram.g_max);  // stuck-on
    xb.inject_stuck_fault(3, 7, 0.0);             // open cell
    xb.inject_stuck_fault(23, 23, cfg.rram.g_min);
    xb.age(3600.0);  // relax the surviving cells
  };

  Rng r1(11);
  xbar::Crossbar direct(cfg, r1);
  prepare(direct);
  xbar::SolveStatus ds;
  const auto i_direct = direct.column_currents(ramp_input(24), ds);
  EXPECT_TRUE(ds.direct);
  EXPECT_TRUE(ds.converged);

  cfg.nodal_direct = false;
  Rng r2(11);
  xbar::Crossbar gs(cfg, r2);
  prepare(gs);
  xbar::SolveStatus gss;
  const auto i_gs = gs.column_currents(ramp_input(24), gss);
  ASSERT_TRUE(gss.converged);

  expect_currents_close(i_direct, i_gs);
}

// ---- invalidation contract --------------------------------------------------

TEST_F(NodalTest, ProgramFaultAndAgeInvalidateTheFactorization) {
  // The contract after the incremental-update work: whole-array mutations
  // still invalidate, but no-op re-programs and small patches (faults,
  // partial re-programs) keep the factorization alive — the former because
  // nothing changed electrically, the latter via rank-1 up/down-dates.
  auto cfg = quiet_config(8, 8);
  Rng rng(5);
  xbar::Crossbar xb(cfg, rng);
  const MatrixD g = mixed_conductances(8, 8, cfg.rram, 21);
  xb.program_conductances(g);
  EXPECT_FALSE(xb.nodal_factorized());  // built lazily, not at program time

  const std::vector<double> x(8, 1.0);
  (void)xb.column_currents(x);
  EXPECT_TRUE(xb.nodal_factorized());

  xb.program_conductances(g);  // noiseless identical targets: no-op
  EXPECT_TRUE(xb.nodal_factorized()) << "no-op reprogram must keep the factor";
  EXPECT_EQ(xb.nodal_updates_applied(), 0u);

  xb.age(60.0);  // every cell relaxes: far beyond the incremental cap
  EXPECT_FALSE(xb.nodal_factorized()) << "age must invalidate";
  (void)xb.column_currents(x);
  EXPECT_TRUE(xb.nodal_factorized());

  xb.inject_stuck_fault(2, 2, 0.0);  // single cell: rank-1 downdate in place
  EXPECT_TRUE(xb.nodal_factorized()) << "single-cell fault must update in place";
  EXPECT_GE(xb.nodal_updates_applied(), 1u);
  (void)xb.column_currents(x);

  fault::FaultMap map(8, 8);
  // kOpen pins at zero conductance, which no programmed/aged cell holds, so
  // the patch is guaranteed non-empty.
  map.set_cell(1, 1, fault::CellFault::kOpen);
  const std::size_t before = xb.nodal_updates_applied();
  xb.apply_fault_map(map);
  EXPECT_TRUE(xb.nodal_factorized()) << "small fault map must update in place";
  EXPECT_GT(xb.nodal_updates_applied(), before);

  xb.program_stochastic_hrs();
  EXPECT_FALSE(xb.nodal_factorized()) << "stochastic reprogram must invalidate";
  (void)xb.column_currents(x);
  EXPECT_TRUE(xb.nodal_factorized());
  EXPECT_EQ(xb.nodal_updates_applied(), 0u);  // fresh factor, no updates yet
}

TEST_F(NodalTest, IncrementalUpdatesMatchFreshFactorizationAfterRandomPatches) {
  // Drive one instance through a random sequence of small mutations — the
  // kind the incremental path absorbs as rank-1 up/down-dates — and after
  // every step compare its readout against a fresh instance that programs
  // the same conductances and factorizes from scratch.  The sequence is long
  // enough to also cross the accumulated-update cap, so the decline +
  // rebuild path is exercised too.
  auto cfg = quiet_config(24, 16);
  Rng rng(61);
  xbar::Crossbar xb(cfg, rng);
  xb.program_conductances(mixed_conductances(24, 16, cfg.rram, 71));
  const std::vector<double> x = ramp_input(24);
  (void)xb.column_currents(x);  // factorize the initial state
  ASSERT_TRUE(xb.nodal_factorized());

  const auto& p = cfg.rram;
  Rng mut(73);
  bool saw_incremental = false;
  for (int step = 0; step < 12; ++step) {
    const double pick = mut.uniform();
    if (pick < 0.4) {
      // Partial re-program of one or two cells.
      std::vector<xbar::CellDelta> patch;
      const std::size_t cells = 1 + (mut.uniform() < 0.5 ? 1 : 0);
      for (std::size_t k = 0; k < cells; ++k)
        patch.push_back({static_cast<std::size_t>(mut.uniform() * 24) % 24,
                         static_cast<std::size_t>(mut.uniform() * 16) % 16,
                         mut.uniform(p.g_min, p.g_max)});
      xb.program_cells(patch);
    } else if (pick < 0.7) {
      xb.inject_stuck_fault(static_cast<std::size_t>(mut.uniform() * 24) % 24,
                            static_cast<std::size_t>(mut.uniform() * 16) % 16,
                            mut.uniform(p.g_min, p.g_max));
    } else {
      xb.age(1.0);  // oversized patch: forces a decline + rebuild
    }
    if (xb.nodal_factorized() && xb.nodal_updates_applied() > 0) saw_incremental = true;

    xbar::SolveStatus s;
    const auto i_inc = xb.column_currents(x, s);
    ASSERT_TRUE(s.converged) << "step " << step;

    // Reference: program the identical conductances into a fresh instance
    // (no variation, all values in the programmable range) and factorize
    // cold.  Both solves meet the same residual tolerance.
    MatrixD ref_g(24, 16);
    for (std::size_t r = 0; r < 24; ++r)
      for (std::size_t c = 0; c < 16; ++c) ref_g(r, c) = xb.conductance(r, c);
    Rng ref_rng(999);
    xbar::Crossbar fresh(cfg, ref_rng);
    fresh.program_conductances(ref_g);
    xbar::SolveStatus fs;
    const auto i_ref = fresh.column_currents(x, fs);
    ASSERT_TRUE(fs.converged) << "step " << step;
    expect_currents_close(i_inc, i_ref);
  }
  EXPECT_TRUE(saw_incremental) << "sequence never exercised the update path";
}

TEST_F(NodalTest, ReadoutAfterReprogramMatchesFreshInstance) {
  // The cached factorization must never leak stale conductances: reprogram
  // and compare against an instance that only ever saw the second state.
  auto cfg = quiet_config(12, 12);
  const MatrixD g1 = mixed_conductances(12, 12, cfg.rram, 31);
  const MatrixD g2 = mixed_conductances(12, 12, cfg.rram, 32);
  const std::vector<double> x = ramp_input(12);

  Rng r1(9);
  xbar::Crossbar reused(cfg, r1);
  reused.program_conductances(g1);
  (void)reused.column_currents(x);  // factorize against g1
  reused.program_conductances(g2);
  const auto i_reused = reused.column_currents(x);

  Rng r2(9);
  xbar::Crossbar fresh(cfg, r2);
  fresh.program_conductances(g1);  // same RNG consumption, no readout
  fresh.program_conductances(g2);
  const auto i_fresh = fresh.column_currents(x);

  for (std::size_t c = 0; c < 12; ++c) EXPECT_EQ(i_reused[c], i_fresh[c]) << "column " << c;
}

// ---- batched readout --------------------------------------------------------

MatrixD batch_inputs(std::size_t batch, std::size_t rows, std::uint64_t seed) {
  MatrixD xs(batch, rows);
  Rng rng(seed);
  for (double& v : xs.data()) v = rng.uniform();
  return xs;
}

TEST_F(NodalTest, BatchedReadoutBitIdenticalToSequentialSingles) {
  auto cfg = quiet_config(16, 16);
  cfg.read_noise_rel = 0.005;  // noise on: the RNG draw order is part of the contract
  const MatrixD g = mixed_conductances(16, 16, cfg.rram, 41);
  const MatrixD xs = batch_inputs(5, 16, 42);

  Rng r1(13);
  xbar::Crossbar batched(cfg, r1);
  batched.program_conductances(g);
  std::vector<xbar::SolveStatus> statuses;
  const MatrixD out = batched.readout_batch(xs, &statuses);
  ASSERT_EQ(statuses.size(), 5u);
  for (const auto& s : statuses) {
    EXPECT_TRUE(s.direct);
    EXPECT_TRUE(s.converged);
  }

  Rng r2(13);
  xbar::Crossbar single(cfg, r2);
  single.program_conductances(g);
  for (std::size_t b = 0; b < xs.rows(); ++b) {
    const std::vector<double> x(xs.row_data(b), xs.row_data(b) + 16);
    const auto i = single.column_currents(x);
    for (std::size_t c = 0; c < 16; ++c)
      EXPECT_EQ(out(b, c), i[c]) << "batch row " << b << " column " << c;
  }
}

TEST_F(NodalTest, BatchedReadoutBitIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    set_parallel_threads(threads);
    auto cfg = quiet_config(32, 32);
    Rng rng(17);
    xbar::Crossbar xb(cfg, rng);
    xb.program_conductances(mixed_conductances(32, 32, cfg.rram, 51));
    return xb.readout_batch(batch_inputs(9, 32, 52));
  };
  const MatrixD out_1t = run(1);
  const MatrixD out_8t = run(8);
  ASSERT_EQ(out_1t.size(), out_8t.size());
  for (std::size_t i = 0; i < out_1t.size(); ++i)
    EXPECT_EQ(out_1t.data()[i], out_8t.data()[i]) << "flat index " << i;
}

TEST_F(NodalTest, BatchedReadoutCoversAllIrDropModes) {
  for (const auto mode :
       {xbar::IrDropMode::kNone, xbar::IrDropMode::kAnalytic, xbar::IrDropMode::kNodal}) {
    auto cfg = quiet_config(8, 8);
    cfg.ir_drop = mode;
    cfg.read_noise_rel = 0.01;
    const MatrixD g = mixed_conductances(8, 8, cfg.rram, 61);
    const MatrixD xs = batch_inputs(4, 8, 62);

    Rng r1(19);
    xbar::Crossbar batched(cfg, r1);
    batched.program_conductances(g);
    const MatrixD out = batched.readout_batch(xs);

    Rng r2(19);
    xbar::Crossbar single(cfg, r2);
    single.program_conductances(g);
    for (std::size_t b = 0; b < xs.rows(); ++b) {
      const std::vector<double> x(xs.row_data(b), xs.row_data(b) + 8);
      const auto i = single.column_currents(x);
      for (std::size_t c = 0; c < 8; ++c)
        EXPECT_EQ(out(b, c), i[c]) << to_string(mode) << " row " << b << " col " << c;
    }
  }
}

TEST_F(NodalTest, BatchedMvmBitIdenticalToSequentialMvm) {
  auto cfg = quiet_config(16, 16);
  cfg.read_noise_rel = 0.005;
  MatrixD w(16, 8);
  Rng wfill(71);
  for (double& v : w.data()) v = wfill.uniform(-1.0, 1.0);
  const MatrixD xs = batch_inputs(4, 16, 72);

  Rng r1(23);
  xbar::Crossbar batched(cfg, r1);
  batched.program_weights(w);
  const MatrixD out = batched.mvm_batch(xs);
  ASSERT_EQ(out.cols(), 8u);

  Rng r2(23);
  xbar::Crossbar single(cfg, r2);
  single.program_weights(w);
  for (std::size_t b = 0; b < xs.rows(); ++b) {
    const std::vector<double> x(xs.row_data(b), xs.row_data(b) + 16);
    const auto y = single.mvm(x);
    for (std::size_t j = 0; j < 8; ++j) EXPECT_EQ(out(b, j), y[j]) << b << ',' << j;
  }
}

// ---- Gauss-Seidel fallback and warm start -----------------------------------

TEST_F(NodalTest, MemoryCapFallsBackToGaussSeidel) {
  auto cfg = quiet_config(16, 16);
  cfg.nodal_direct_max_bytes = 64;  // below any real factor size
  Rng rng(29);
  xbar::Crossbar xb(cfg, rng);
  xb.program_conductances(mixed_conductances(16, 16, cfg.rram, 81));
  xbar::SolveStatus s;
  (void)xb.column_currents(ramp_input(16), s);
  EXPECT_FALSE(s.direct);
  EXPECT_TRUE(s.converged);
  EXPECT_GT(s.iterations, 0u);
  EXPECT_FALSE(xb.nodal_factorized());
}

TEST_F(NodalTest, WarmStartConvergesFasterOnRepeatedQueries) {
  auto cfg = quiet_config(32, 32);
  cfg.nodal_direct = false;
  Rng rng(31);
  xbar::Crossbar xb(cfg, rng);
  xb.program_conductances(mixed_conductances(32, 32, cfg.rram, 91));
  const std::vector<double> x = ramp_input(32);
  xbar::SolveStatus cold, warm;
  const auto i_cold = xb.column_currents(x, cold);
  const auto i_warm = xb.column_currents(x, warm);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
  expect_currents_close(i_cold, i_warm);
}

TEST_F(NodalTest, PerCallStatusReflectsDirectSolve) {
  auto cfg = quiet_config(8, 8);
  Rng rng(37);
  xbar::Crossbar xb(cfg, rng);
  xb.program_conductances(mixed_conductances(8, 8, cfg.rram, 101));
  xbar::SolveStatus s;
  (void)xb.column_currents(ramp_input(8), s);
  EXPECT_TRUE(s.direct);
  EXPECT_TRUE(s.converged);
  EXPECT_FALSE(s.used_fallback);
  EXPECT_EQ(s.iterations, 0u);
  EXPECT_LT(s.residual, xbar::kNodalTolRel * cfg.read_voltage);
}

TEST_F(NodalTest, UpdateCellsPivotBreakdownResetsSolver) {
  // Force the C1 downdate breakdown path.  Cycling one cell between a tiny
  // and an enormous conductance on a grid whose pivots are themselves tiny
  // accumulates floating-point drift of order g_hi * eps per up/down pair —
  // far above the ~1e-9 pivot scale — so a downdated pivot eventually goes
  // non-positive and update_cells() must reset the solver rather than hand
  // back a poisoned factor.
  const std::size_t n = 8;
  const double g_lo = 1e-9, g_hi = 1e8, g_wire = 1e-9;
  const MatrixD g(n, n, g_lo);
  xbar::NodalSolver solver;
  ASSERT_TRUE(solver.factorize(g, g_wire, std::size_t{1} << 30));

  bool broke = false;
  std::size_t cycles = 0;
  for (; cycles < 5000 && !broke; ++cycles) {
    const xbar::CellDelta up{3, 4, g_hi};
    if (!solver.update_cells(&up, 1)) {
      broke = true;
      break;
    }
    const xbar::CellDelta down{3, 4, g_lo};
    if (!solver.update_cells(&down, 1)) broke = true;
  }
  ASSERT_TRUE(broke) << "no pivot breakdown after " << cycles << " up/down cycles";
  EXPECT_FALSE(solver.ready());  // reset, not silently kept

  // Recovery: the same instance refactorizes from the true conductances and
  // answers bit-identically to a solver that never saw an update.
  ASSERT_TRUE(solver.factorize(g, g_wire, std::size_t{1} << 30));
  xbar::NodalSolver reference;
  ASSERT_TRUE(reference.factorize(g, g_wire, std::size_t{1} << 30));
  const std::vector<double> x = ramp_input(n);
  std::vector<double> i_recovered(n), i_reference(n);
  xbar::NodalSolver::Workspace ws_a, ws_b;
  solver.solve(x.data(), i_recovered.data(), ws_a);
  reference.solve(x.data(), i_reference.data(), ws_b);
  for (std::size_t c = 0; c < n; ++c) EXPECT_EQ(i_recovered[c], i_reference[c]) << "column " << c;
}

TEST_F(NodalTest, RepeatedProgramCellsCyclesStayCorrectThroughDeclines) {
  // Crossbar-level refactorize-and-retry net: hammer one cell with
  // program_cells() cycles.  The accumulation cap (bw/2) periodically
  // declines the patch and drops the cached factorization, and any numeric
  // trouble in an accepted update does the same — either way the next
  // readout must rebuild and answer like a freshly-programmed array.
  auto cfg = quiet_config(12, 12);
  cfg.nodal_incremental = true;
  Rng rng(71);
  xbar::Crossbar xb(cfg, rng);
  xb.program_conductances(mixed_conductances(12, 12, cfg.rram, 131));

  const std::vector<double> x = ramp_input(12);
  (void)xb.column_currents(x);  // build the factorization once
  for (int cycle = 0; cycle < 64; ++cycle) {
    const double target = (cycle % 2 == 0) ? cfg.rram.g_max : cfg.rram.g_min;
    const std::vector<xbar::CellDelta> patch{{5, 7, target}};
    xb.program_cells(patch);
    (void)xb.column_currents(x);  // keep the update/decline machinery hot
  }

  xbar::SolveStatus status;
  const auto i_survivor = xb.column_currents(x, status);
  EXPECT_TRUE(status.converged);

  // Fresh array programmed with the survivor's exact final conductances.
  Rng rng2(72);
  xbar::Crossbar fresh(cfg, rng2);
  MatrixD g_final(12, 12, 0.0);
  for (std::size_t r = 0; r < 12; ++r)
    for (std::size_t c = 0; c < 12; ++c) g_final(r, c) = xb.conductance(r, c);
  fresh.program_conductances(g_final);
  expect_currents_close(i_survivor, fresh.column_currents(x));
}

TEST_F(NodalTest, ConcurrentReadoutsOnSharedInstanceAgree) {
  // The parallel evaluator shares const arrays across worker threads: many
  // threads race to build the factorization (exactly once, under the cache
  // mutex).  With read noise off, every thread must see the same currents.
  set_parallel_threads(8);
  auto cfg = quiet_config(16, 16);
  Rng rng(53);
  xbar::Crossbar xb(cfg, rng);
  xb.program_conductances(mixed_conductances(16, 16, cfg.rram, 111));
  const std::vector<double> x = ramp_input(16);
  const auto reference = xb.column_currents(x);

  xb.program_conductances(mixed_conductances(16, 16, cfg.rram, 112));  // invalidate
  std::vector<std::vector<double>> results(16);
  parallel_for(16, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) results[i] = xb.column_currents(x);
  });
  for (std::size_t i = 1; i < results.size(); ++i)
    for (std::size_t c = 0; c < results[i].size(); ++c)
      EXPECT_EQ(results[i][c], results[0][c]) << "thread result " << i << " column " << c;
  EXPECT_TRUE(xb.nodal_factorized());
  (void)reference;
}

// ---- NodalSolver unit behaviour ---------------------------------------------

TEST_F(NodalTest, SolverDeclinesDegenerateInputs) {
  xbar::NodalSolver solver;
  EXPECT_FALSE(solver.factorize(MatrixD{}, 1.0, 1u << 20));
  MatrixD g(4, 4, 1e-5);
  EXPECT_FALSE(solver.factorize(g, 0.0, 1u << 20));  // no wire conductance
  EXPECT_FALSE(solver.factorize(g, 1.0, 8));         // memory cap
  EXPECT_FALSE(solver.ready());
  EXPECT_TRUE(solver.factorize(g, 1.0, 1u << 20));
  EXPECT_TRUE(solver.ready());
  EXPECT_EQ(solver.node_count(), 32u);
  solver.reset();
  EXPECT_FALSE(solver.ready());
}

TEST_F(NodalTest, SolverIsBitwiseDeterministicAcrossInstances) {
  MatrixD g(16, 12, 1e-5);
  Rng fill(7);
  for (double& v : g.data()) v = fill.uniform(1e-6, 1e-4);
  const std::vector<double> v_in = ramp_input(16);

  xbar::NodalSolver s1, s2;
  ASSERT_TRUE(s1.factorize(g, 2.0e3, 1u << 24));
  ASSERT_TRUE(s2.factorize(g, 2.0e3, 1u << 24));
  std::vector<double> i1(12), i2(12);
  xbar::NodalSolver::Workspace w1, w2;
  const auto r1 = s1.solve(v_in.data(), i1.data(), w1);
  const auto r2 = s2.solve(v_in.data(), i2.data(), w2);
  EXPECT_EQ(r1.residual, r2.residual);
  for (std::size_t c = 0; c < 12; ++c) EXPECT_EQ(i1[c], i2[c]);
}

// ---- downstream batch users -------------------------------------------------

TEST_F(NodalTest, TiledBatchBitIdenticalToSequentialMvm) {
  xbar::TiledConfig tcfg;
  tcfg.tile = quiet_config(16, 16);
  tcfg.tile.read_noise_rel = 0.005;
  Rng r1(41), r2(41);
  xbar::TiledCrossbar batched(tcfg, 24, 12, r1);
  xbar::TiledCrossbar single(tcfg, 24, 12, r2);
  MatrixD w(24, 12);
  Rng wfill(43);
  for (double& v : w.data()) v = wfill.uniform(-1.0, 1.0);
  batched.program_weights(w);
  single.program_weights(w);

  const MatrixD xs = batch_inputs(3, 24, 44);
  const MatrixD out = batched.mvm_batch(xs);
  for (std::size_t b = 0; b < xs.rows(); ++b) {
    const std::vector<double> x(xs.row_data(b), xs.row_data(b) + 24);
    const auto y = single.mvm(x);
    for (std::size_t j = 0; j < 12; ++j) EXPECT_EQ(out(b, j), y[j]) << b << ',' << j;
  }
}

TEST_F(NodalTest, LshHashBatchBitIdenticalToSequentialHash) {
  auto cfg = quiet_config(32, 32);
  cfg.read_noise_rel = 0.005;
  Rng r1(47), r2(47);
  mann::CrossbarLsh batched(cfg, 16, r1);
  mann::CrossbarLsh single(cfg, 16, r2);

  const MatrixD xs = batch_inputs(4, 32, 48);
  const auto sigs = batched.hash_batch(xs);
  ASSERT_EQ(sigs.size(), 4u);
  for (std::size_t b = 0; b < xs.rows(); ++b) {
    const std::vector<double> x(xs.row_data(b), xs.row_data(b) + 32);
    EXPECT_EQ(sigs[b], single.hash(x)) << "batch row " << b;
  }
}

}  // namespace
}  // namespace xlds
