// Unit tests for the DSE core: enumeration/culling, FOM evaluation, Pareto
// extraction and triage ranking.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/cim.hpp"
#include "core/design_space.hpp"
#include "core/evaluate.hpp"
#include "core/pareto.hpp"
#include "core/profiler.hpp"
#include "core/report.hpp"
#include "util/error.hpp"

namespace xlds::core {
namespace {

// ---- enumeration / culling ---------------------------------------------------

TEST(DesignSpace, EnumerationNonEmptyAndCulled) {
  const auto survivors = enumerate_design_space("isolet-like");
  const auto all = enumerate_design_space("isolet-like", /*include_culled=*/true);
  EXPECT_GT(survivors.size(), 8u);
  EXPECT_GT(all.size(), survivors.size());
  for (const auto& ep : survivors) EXPECT_FALSE(ep.culled_because.has_value());
}

TEST(DesignSpace, PaperExampleCulls) {
  // SRAM is volatile: no crossbar weights.
  DesignPoint p;
  p.device = device::DeviceKind::kSram;
  p.arch = ArchKind::kCrossbarAccelerator;
  p.algo = AlgoKind::kCnn;
  EXPECT_TRUE(incompatibility(p).has_value());

  // MRAM's on/off ratio blocks CAM matchline sensing.
  p.device = device::DeviceKind::kMram;
  p.arch = ArchKind::kCamAccelerator;
  p.algo = AlgoKind::kHdc;
  EXPECT_TRUE(incompatibility(p).has_value());

  // FeFET CAM + crossbar hybrid for HDC: the Sec.-III design survives.
  p.device = device::DeviceKind::kFeFet;
  p.arch = ArchKind::kCamXbarHybrid;
  p.algo = AlgoKind::kHdc;
  EXPECT_FALSE(incompatibility(p).has_value());

  // RRAM all-crossbar MANN (Sec. IV) needs the hybrid, not CAM alone.
  p.device = device::DeviceKind::kRram;
  p.algo = AlgoKind::kMann;
  p.arch = ArchKind::kCamAccelerator;
  EXPECT_TRUE(incompatibility(p).has_value());
  p.arch = ArchKind::kCamXbarHybrid;
  EXPECT_FALSE(incompatibility(p).has_value());
}

TEST(DesignSpace, DigitalPlatformsCollapseDeviceAxis) {
  DesignPoint p;
  p.device = device::DeviceKind::kRram;
  p.arch = ArchKind::kGpu;
  p.algo = AlgoKind::kHdc;
  EXPECT_TRUE(incompatibility(p).has_value());
  p.device = device::DeviceKind::kSram;
  EXPECT_FALSE(incompatibility(p).has_value());
}

TEST(DesignSpace, ToStringRoundtrips) {
  DesignPoint p;
  p.device = device::DeviceKind::kFeFet;
  p.arch = ArchKind::kCamXbarHybrid;
  p.algo = AlgoKind::kHdc;
  p.application = "isolet-like";
  EXPECT_EQ(p.to_string(), "FeFET/XBar+CAM/HDC/isolet-like");
}

// ---- profiles ---------------------------------------------------------------

TEST(Profiles, AllPresetsHaveProfiles) {
  for (const char* name : {"isolet-like", "ucihar-like", "mnist-like", "face-like",
                           "language-like", "omniglot-like"}) {
    const AppProfile p = profile_for(name);
    EXPECT_GT(p.input_dim, 0u) << name;
    EXPECT_GT(p.n_classes, 1u) << name;
  }
  EXPECT_THROW(profile_for("unknown-app"), PreconditionError);
}

// ---- evaluation ---------------------------------------------------------------

TEST(Evaluator, DigitalAndInMemoryBothScore) {
  Evaluator ev;
  const AppProfile profile = profile_for("isolet-like");

  DesignPoint gpu_point;
  gpu_point.device = device::DeviceKind::kSram;
  gpu_point.arch = ArchKind::kGpu;
  gpu_point.algo = AlgoKind::kHdc;
  const Fom gpu_fom = ev.evaluate(gpu_point, profile);
  EXPECT_GT(gpu_fom.latency, 0.0);
  EXPECT_GT(gpu_fom.energy, 0.0);
  EXPECT_EQ(gpu_fom.area_mm2, 0.0);

  DesignPoint cam_point;
  cam_point.device = device::DeviceKind::kFeFet;
  cam_point.arch = ArchKind::kCamXbarHybrid;
  cam_point.algo = AlgoKind::kHdc;
  const Fom cam_fom = ev.evaluate(cam_point, profile);
  EXPECT_GT(cam_fom.latency, 0.0);
  EXPECT_GT(cam_fom.area_mm2, 0.0);

  // The headline of Sec. III: the in-memory pipeline is orders faster at
  // batch 1 than the GPU software path.
  EXPECT_GT(gpu_fom.latency / cam_fom.latency, 10.0);
}

TEST(Evaluator, EnduranceCullsWriteHeavyFlash) {
  Evaluator ev;
  AppProfile profile = profile_for("omniglot-like");
  profile.writes_per_inference = 10.0;  // write-heavy online learning
  DesignPoint p;
  p.device = device::DeviceKind::kFlash;
  p.arch = ArchKind::kCamAccelerator;  // flash CAN build CAMs (Sec. II-B1)
  p.algo = AlgoKind::kHdc;
  ASSERT_FALSE(incompatibility(p).has_value());
  const Fom fom = ev.evaluate(p, profile);
  EXPECT_FALSE(fom.feasible);
  EXPECT_NE(fom.note.find("endurance"), std::string::npos);
}

TEST(Evaluator, AccuracyOracleIsPluggable) {
  Evaluator ev([](const DesignPoint&, const AppProfile&) { return 0.42; });
  DesignPoint p;
  p.device = device::DeviceKind::kSram;
  p.arch = ArchKind::kGpu;
  p.algo = AlgoKind::kMlp;
  EXPECT_DOUBLE_EQ(ev.evaluate(p, profile_for("isolet-like")).accuracy, 0.42);
}

TEST(Evaluator, DefaultOracleBitPenalties) {
  const AppProfile profile = profile_for("isolet-like");
  DesignPoint fefet;
  fefet.device = device::DeviceKind::kFeFet;  // 3-bit cells
  fefet.arch = ArchKind::kCamXbarHybrid;
  fefet.algo = AlgoKind::kHdc;
  DesignPoint sram;
  sram.device = device::DeviceKind::kSram;  // 1-bit cells
  sram.arch = ArchKind::kCamAccelerator;
  sram.algo = AlgoKind::kHdc;
  EXPECT_GT(default_accuracy_oracle(fefet, profile), default_accuracy_oracle(sram, profile));
}

// ---- measured profiler (the Fig. 6 inset) ----------------------------------------

TEST(Profiler, MeasuredCountsAreExact) {
  const MeasuredProfile m = profile_hdc_application("ucihar-like", 512, 3);
  EXPECT_EQ(m.input_dim, 561u);
  EXPECT_EQ(m.n_classes, 6u);
  EXPECT_EQ(m.hv_dim, 512u);
  EXPECT_EQ(m.encode_macs, 561u * 512u);
  EXPECT_EQ(m.search_macs, m.am_entries * 512u);
  EXPECT_EQ(m.am_entries, 6u * 30u);  // the preset's training split
  EXPECT_GT(m.software_accuracy, 0.8);
  EXPECT_GT(m.measured_search_fraction, 0.0);
  EXPECT_LT(m.measured_search_fraction, 1.0);
}

TEST(Profiler, ConvertsToAppProfile) {
  const MeasuredProfile m = profile_hdc_application("language-like", 512, 4);
  const AppProfile p = to_app_profile(m, 10);
  EXPECT_EQ(p.input_dim, m.input_dim);
  EXPECT_EQ(p.am_entries, m.am_entries);
  EXPECT_EQ(p.hv_dim, 512u);
  EXPECT_EQ(p.batch, 10u);
  // The converted profile must drive the evaluator end to end.
  DesignPoint point;
  point.device = device::DeviceKind::kFeFet;
  point.arch = ArchKind::kCamXbarHybrid;
  point.algo = AlgoKind::kHdc;
  const Fom fom = Evaluator{}.evaluate(point, p);
  EXPECT_GT(fom.latency, 0.0);
  EXPECT_TRUE(fom.feasible);
}

TEST(Profiler, EmptyProfileRejected) {
  MeasuredProfile empty;
  EXPECT_THROW(to_app_profile(empty), PreconditionError);
}

// ---- Eva-CiM favourability ------------------------------------------------------

TEST(CimFavorability, MvmDominatedProgramIsFavourable) {
  sim::Op mvm;
  mvm.kind = sim::OpKind::kMvm;
  mvm.rows = 512;
  mvm.cols = 512;
  mvm.repeat = 50;
  sim::AcceleratorConfig accel;
  accel.present = true;
  const CimFavorability r = evaluate_cim_favorability(
      {mvm}, sim::CoreConfig{}, sim::CacheConfig{},
      sim::CacheConfig{.name = "L2", .size_bytes = 512 * 1024, .ways = 8, .hit_latency_s = 5e-9},
      sim::DramConfig{}, accel);
  EXPECT_TRUE(r.favourable);
  EXPECT_GT(r.speedup, 1.5);
  EXPECT_GT(r.energy_ratio, 1.2);
  EXPECT_GT(r.offloadable_fraction, 0.9);
}

TEST(CimFavorability, ScalarProgramIsNot) {
  sim::Op compute;
  compute.kind = sim::OpKind::kCompute;
  compute.scalar_ops = 10'000'000;
  sim::AcceleratorConfig accel;
  accel.present = true;
  const CimFavorability r = evaluate_cim_favorability(
      {compute}, sim::CoreConfig{}, sim::CacheConfig{},
      sim::CacheConfig{.name = "L2", .size_bytes = 512 * 1024, .ways = 8, .hit_latency_s = 5e-9},
      sim::DramConfig{}, accel);
  EXPECT_FALSE(r.favourable);
  EXPECT_NEAR(r.speedup, 1.0, 0.05);
  EXPECT_EQ(r.offloadable_fraction, 0.0);
}

TEST(CimFavorability, ThresholdsSteerTheVerdict) {
  sim::Op mvm;
  mvm.kind = sim::OpKind::kMvm;
  mvm.rows = 256;
  mvm.cols = 256;
  mvm.repeat = 20;
  sim::AcceleratorConfig accel;
  accel.present = true;
  CimThresholds impossible;
  impossible.min_speedup = 1e9;
  const CimFavorability r = evaluate_cim_favorability(
      {mvm}, sim::CoreConfig{}, sim::CacheConfig{},
      sim::CacheConfig{.name = "L2", .size_bytes = 512 * 1024, .ways = 8, .hit_latency_s = 5e-9},
      sim::DramConfig{}, accel, sim::EnergyConfig{}, impossible);
  EXPECT_FALSE(r.favourable);
  EXPECT_GT(r.speedup, 1.0);  // the measurement itself is unaffected
}

// ---- Pareto / triage -----------------------------------------------------------

std::vector<ScoredPoint> synthetic_points() {
  auto mk = [](double lat, double en, double area, double acc, bool feasible = true) {
    ScoredPoint sp;
    sp.fom.latency = lat;
    sp.fom.energy = en;
    sp.fom.area_mm2 = area;
    sp.fom.accuracy = acc;
    sp.fom.feasible = feasible;
    return sp;
  };
  return {
      mk(1.0, 1.0, 1.0, 0.90),   // 0: fast/efficient, decent accuracy
      mk(2.0, 2.0, 2.0, 0.95),   // 1: slower but most accurate
      mk(3.0, 3.0, 3.0, 0.90),   // 2: dominated by 0
      mk(0.5, 5.0, 1.0, 0.80),   // 3: fastest, hungry, least accurate
      mk(0.1, 0.1, 0.1, 0.99, false),  // 4: infeasible superpoint
  };
}

TEST(Pareto, FrontExcludesDominatedAndInfeasible) {
  const auto points = synthetic_points();
  const auto front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Pareto, FrontMembersNotDominatedByEachOther) {
  const auto points = synthetic_points();
  const auto front = pareto_front(points);
  for (std::size_t i : front) {
    for (std::size_t j : front) {
      if (i == j) continue;
      const auto& a = points[i].fom;
      const auto& b = points[j].fom;
      const bool dominates = a.latency <= b.latency && a.energy <= b.energy &&
                             a.area_mm2 <= b.area_mm2 && a.accuracy >= b.accuracy &&
                             (a.latency < b.latency || a.energy < b.energy ||
                              a.area_mm2 < b.area_mm2 || a.accuracy > b.accuracy);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Pareto, AllInfeasibleCohortYieldsEmptyFrontAndRanking) {
  std::vector<ScoredPoint> points = synthetic_points();
  for (auto& sp : points) sp.fom.feasible = false;
  EXPECT_TRUE(pareto_front(points).empty());
  EXPECT_TRUE(triage_ranking(points).empty());
}

TEST(Pareto, ExactTiesAllLandOnTheFront) {
  // Identical objectives: neither copy dominates the other (domination needs
  // a strict improvement somewhere), so both survive — dedup is the caller's
  // job, not the front's.
  std::vector<ScoredPoint> points = {synthetic_points()[0], synthetic_points()[0]};
  EXPECT_EQ(pareto_front(points), (std::vector<std::size_t>{0, 1}));
}

TEST(Pareto, SinglePointInput) {
  const std::vector<ScoredPoint> one = {synthetic_points()[0]};
  EXPECT_EQ(pareto_front(one), (std::vector<std::size_t>{0}));
  EXPECT_EQ(triage_ranking(one), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(pareto_front({}).empty());
  EXPECT_TRUE(triage_ranking({}).empty());
}

TEST(Pareto, NanObjectivesAreTreatedAsInfeasible) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto points = synthetic_points();
  points[1].fom.accuracy = nan;  // would otherwise be incomparable -> never dominated
  points[3].fom.latency = nan;
  const auto front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0}));
  // NaN points are excluded from the ranking *and* from the cohort-best
  // normalisation (a NaN best would poison every score).
  const auto order = triage_ranking(points);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 2u);
}

TEST(Pareto, DedupKeepsFirstOccurrenceOfEachDesign) {
  auto points = synthetic_points();
  // 2 revisits 0's design with a different (dominated) score; 3 is distinct.
  points[0].point.device = device::DeviceKind::kFeFet;
  points[2].point.device = device::DeviceKind::kFeFet;
  points[3].point.device = device::DeviceKind::kRram;
  points[4].point.device = device::DeviceKind::kRram;
  points[4].point.application = "mnist-like";  // application is part of identity
  EXPECT_EQ(dedup_points(points), (std::vector<std::size_t>{0, 1, 3, 4}));
  EXPECT_TRUE(dedup_points({}).empty());
}

TEST(Triage, RankingPrefersDominatingPoints) {
  const auto points = synthetic_points();
  const auto order = triage_ranking(points);
  ASSERT_EQ(order.size(), 4u);  // infeasible excluded
  // Point 0 dominates point 2, so 0 must rank strictly earlier.
  const auto pos = [&](std::size_t idx) {
    return std::find(order.begin(), order.end(), idx) - order.begin();
  };
  EXPECT_LT(pos(0), pos(2));
}

TEST(Triage, AccuracyWeightSteersTheWinner) {
  const auto points = synthetic_points();
  TriageWeights acc_heavy;
  acc_heavy.accuracy = 1000.0;
  EXPECT_EQ(triage_ranking(points, acc_heavy).front(), 1u);  // most accurate wins
  TriageWeights speed_heavy;
  speed_heavy.accuracy = 0.0;
  speed_heavy.energy = 0.0;
  speed_heavy.area = 0.0;
  EXPECT_EQ(triage_ranking(points, speed_heavy).front(), 3u);  // fastest wins
}

// ---- report rendering -----------------------------------------------------------

TEST(Report, ShortlistRespectsMaxRowsAndMarksPareto) {
  Evaluator ev;
  std::vector<ScoredPoint> scored;
  (void)triage_report("ucihar-like", ev, {}, &scored);
  const auto ranking = triage_ranking(scored);
  const auto front = pareto_front(scored);
  ShortlistOptions opts;
  opts.max_rows = 3;
  const Table t = format_shortlist(scored, ranking, front, opts);
  EXPECT_EQ(t.row_count(), 3u);
  // The table must contain a Pareto star somewhere in its render.
  EXPECT_NE(t.str().find("*"), std::string::npos);
}

TEST(Report, TriageReportEndToEnd) {
  Evaluator ev;
  const Table t = triage_report("language-like", ev);
  EXPECT_GT(t.row_count(), 4u);
  EXPECT_NE(t.str().find("language-like"), std::string::npos);
}

TEST(Report, BadRankingIndexRejected) {
  std::vector<ScoredPoint> scored(2);
  EXPECT_THROW(format_shortlist(scored, {5}, {}), PreconditionError);
}

TEST(Triage, EndToEndSweepProducesFiniteScores) {
  Evaluator ev;
  const AppProfile profile = profile_for("isolet-like");
  std::vector<ScoredPoint> scored;
  for (const auto& ep : enumerate_design_space("isolet-like")) {
    ScoredPoint sp;
    sp.point = ep.point;
    sp.fom = ev.evaluate(ep.point, profile);
    scored.push_back(sp);
  }
  const auto front = pareto_front(scored);
  const auto ranking = triage_ranking(scored);
  EXPECT_FALSE(front.empty());
  EXPECT_FALSE(ranking.empty());
  EXPECT_LE(front.size(), scored.size());
  // Every Pareto member must appear in the ranking.
  for (std::size_t idx : front)
    EXPECT_NE(std::find(ranking.begin(), ranking.end(), idx), ranking.end());
}

}  // namespace
}  // namespace xlds::core
