// Unit tests for the event-driven system simulator: event kernel, caches,
// the machine model and the workload traces.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cache.hpp"
#include "sim/event.hpp"
#include "sim/machine.hpp"
#include "sim/multicore.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace xlds::sim {
namespace {

// ---- EventQueue -------------------------------------------------------------

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&] { order.push_back(1); });
  q.schedule(5, [&] { order.push_back(2); });
  q.schedule(5, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) q.schedule_in(10, chain);
  };
  q.schedule(0, chain);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule(10, [&] { EXPECT_THROW(q.schedule(5, [] {}), PreconditionError); });
  q.run();
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&] { ++fired; });
  q.schedule(100, [&] { ++fired; });
  q.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 50u);
  q.run();
  EXPECT_EQ(fired, 2);
}

// ---- Cache -----------------------------------------------------------------

TEST(Cache, HitsAfterFill) {
  Cache c(CacheConfig{.name = "L1", .size_bytes = 1024, .line_bytes = 64, .ways = 2});
  EXPECT_FALSE(c.access(0x100));
  EXPECT_TRUE(c.access(0x100));
  EXPECT_TRUE(c.access(0x104));  // same line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction) {
  // 2 ways, 8 sets: three lines mapping to the same set evict the oldest.
  Cache c(CacheConfig{.name = "L1", .size_bytes = 1024, .line_bytes = 64, .ways = 2});
  const Addr set_stride = 8 * 64;  // same set, different tags
  c.access(0x0);
  c.access(set_stride);
  c.access(2 * set_stride);       // evicts 0x0
  EXPECT_FALSE(c.access(0x0));    // miss again
  EXPECT_TRUE(c.access(2 * set_stride));
}

TEST(Cache, StreamLargerThanCacheMostlyMisses) {
  Cache c(CacheConfig{.name = "L1", .size_bytes = 4096, .line_bytes = 64, .ways = 4});
  for (Addr a = 0; a < 1 << 20; a += 64) c.access(a);
  EXPECT_LT(c.stats().hit_rate(), 0.01);
}

TEST(Cache, RepeatedWorkingSetFitsAndHits) {
  Cache c(CacheConfig{.name = "L1", .size_bytes = 8192, .line_bytes = 64, .ways = 4});
  for (int pass = 0; pass < 4; ++pass)
    for (Addr a = 0; a < 4096; a += 64) c.access(a);
  EXPECT_GT(c.stats().hit_rate(), 0.7);
}

TEST(MemoryHierarchy, LatencyOrdering) {
  MemoryHierarchy mem(CacheConfig{.name = "L1", .size_bytes = 1024, .line_bytes = 64, .ways = 2,
                                  .hit_latency_s = 1e-9},
                      CacheConfig{.name = "L2", .size_bytes = 65536, .line_bytes = 64, .ways = 8,
                                  .hit_latency_s = 5e-9},
                      DramConfig{});
  const double t_miss = mem.access(0x5000);  // cold: DRAM
  const double t_hit = mem.access(0x5000);   // L1 hit
  EXPECT_GT(t_miss, 50e-9);
  EXPECT_NEAR(t_hit, 1e-9, 1e-12);
  EXPECT_EQ(mem.dram_accesses(), 1u);
  EXPECT_EQ(mem.dram_bytes(), 64u);
}

// ---- Machine ----------------------------------------------------------------

CoreConfig core_config() { return CoreConfig{.freq_hz = 1e9, .ipc = 1.0, .macs_per_cycle = 2.0}; }
CacheConfig l1_config() {
  return CacheConfig{.name = "L1", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 4,
                     .hit_latency_s = 1e-9};
}
CacheConfig l2_config() {
  return CacheConfig{.name = "L2", .size_bytes = 512 * 1024, .line_bytes = 64, .ways = 8,
                     .hit_latency_s = 6e-9};
}

TEST(Machine, ComputeOpTiming) {
  Machine m(core_config(), l1_config(), l2_config(), DramConfig{}, AcceleratorConfig{});
  Op op;
  op.kind = OpKind::kCompute;
  op.scalar_ops = 1'000'000;
  const RunStats stats = m.run({op});
  EXPECT_NEAR(stats.total_time, 1e-3, 1e-5);  // 1M ops / (1 IPC * 1 GHz)
  EXPECT_EQ(stats.ops_executed, 1u);
}

TEST(Machine, MemStreamChargesHierarchy) {
  Machine m(core_config(), l1_config(), l2_config(), DramConfig{}, AcceleratorConfig{});
  Op op;
  op.kind = OpKind::kMemStream;
  op.base = 0x10000000;
  op.bytes = 1 << 20;  // 1 MiB cold stream
  const RunStats stats = m.run({op});
  // Bandwidth-limited stream: ~1 MiB / 25.6 GB/s = ~41 us.
  EXPECT_GT(stats.memory_time, 3e-5);
  EXPECT_LT(stats.memory_time, 3e-4);
  EXPECT_GT(stats.dram_bytes, 1u << 19);
}

TEST(Machine, MvmOnCoreVsOffload) {
  Op mvm;
  mvm.kind = OpKind::kMvm;
  mvm.rows = 512;
  mvm.cols = 512;
  mvm.repeat = 100;

  Machine baseline(core_config(), l1_config(), l2_config(), DramConfig{}, AcceleratorConfig{});
  AcceleratorConfig accel;
  accel.present = true;
  Machine accelerated(core_config(), l1_config(), l2_config(), DramConfig{}, accel);

  const RunStats s0 = baseline.run({mvm});
  const RunStats s1 = accelerated.run({mvm});
  EXPECT_GT(s0.mvm_core_time, 0.0);
  EXPECT_EQ(s0.offloads, 0u);
  EXPECT_EQ(s1.offloads, 1u);
  EXPECT_GT(s1.accel_time, 0.0);
  EXPECT_LT(s1.total_time, s0.total_time);
}

TEST(Machine, NonOffloadableMvmStaysOnCore) {
  Op mvm;
  mvm.kind = OpKind::kMvm;
  mvm.rows = 256;
  mvm.cols = 256;
  mvm.offloadable = false;
  AcceleratorConfig accel;
  accel.present = true;
  Machine m(core_config(), l1_config(), l2_config(), DramConfig{}, accel);
  const RunStats s = m.run({mvm});
  EXPECT_EQ(s.offloads, 0u);
  EXPECT_GT(s.mvm_core_time, 0.0);
}

TEST(Machine, StatsAccountForTotal) {
  AcceleratorConfig accel;
  accel.present = true;
  Machine m(core_config(), l1_config(), l2_config(), DramConfig{}, accel);
  const Program prog = make_cnn_program(cifar_cnn(4));
  const RunStats s = m.run(prog);
  const double parts =
      s.compute_time + s.memory_time + s.mvm_core_time + s.accel_time + s.transfer_time;
  // Sequential core + blocking offload: parts must cover ~all of total time
  // (event-tick rounding allows a tiny slack).
  EXPECT_NEAR(parts, s.total_time, 0.02 * s.total_time);
}

// ---- multi-core machine --------------------------------------------------------

MulticoreConfig multicore_config(std::size_t cores, bool accel_present) {
  MulticoreConfig cfg;
  cfg.cores = cores;
  cfg.core = core_config();
  cfg.l1 = l1_config();
  cfg.l2 = l2_config();
  cfg.accel.present = accel_present;
  return cfg;
}

TEST(Multicore, SingleCoreMatchesMachine) {
  const Program prog = make_cnn_program(cifar_cnn(4));
  Machine single(core_config(), l1_config(), l2_config(), DramConfig{}, AcceleratorConfig{});
  const RunStats ref = single.run(prog);
  MulticoreMachine multi(multicore_config(1, false));
  const MulticoreStats s = multi.run({prog});
  EXPECT_NEAR(s.total_time, ref.total_time, 0.01 * ref.total_time);
  EXPECT_EQ(s.per_core[0].ops_executed, ref.ops_executed);
}

TEST(Multicore, IndependentComputeScalesPerfectly) {
  Op compute;
  compute.kind = OpKind::kCompute;
  compute.scalar_ops = 10'000'000;
  MulticoreMachine one(multicore_config(1, false));
  MulticoreMachine four(multicore_config(4, false));
  const double t1 = one.run({{compute}}).total_time;
  const double t4 = four.run({{compute}, {compute}, {compute}, {compute}}).total_time;
  // Compute-only work has no shared resource: the makespan is unchanged.
  EXPECT_NEAR(t4, t1, 0.01 * t1);
}

TEST(Multicore, SharedAcceleratorQueues) {
  Op mvm;
  mvm.kind = OpKind::kMvm;
  mvm.rows = 512;
  mvm.cols = 512;
  mvm.repeat = 200;
  MulticoreMachine four(multicore_config(4, true));
  const MulticoreStats s = four.run({{mvm}, {mvm}, {mvm}, {mvm}});
  // All four cores contend for one crossbar engine: someone must wait.
  EXPECT_GT(s.accel_wait_time, 0.0);
  std::size_t offloads = 0;
  for (const auto& rs : s.per_core) offloads += rs.offloads;
  EXPECT_EQ(offloads, 4u);
}

TEST(Multicore, AccelThroughputSaturatesWithCores) {
  Op mvm;
  mvm.kind = OpKind::kMvm;
  mvm.rows = 512;
  mvm.cols = 512;
  mvm.repeat = 400;
  auto makespan = [&](std::size_t cores) {
    MulticoreConfig cfg = multicore_config(cores, true);
    cfg.accel.parallel_tiles = 1;  // busy time dominates: contention must bite
    MulticoreMachine m(cfg);
    return m.run(std::vector<Program>(cores, Program{mvm})).total_time;
  };
  const double t1 = makespan(1);
  const double t8 = makespan(8);
  // 8 cores' worth of offloads through one engine: the makespan must grow
  // well beyond a single core's, approaching serialisation of the busy time.
  EXPECT_GT(t8, 2.0 * t1);
}

TEST(Multicore, SharedL2VisibleInStats) {
  Op stream;
  stream.kind = OpKind::kMemStream;
  stream.base = 0x1000'0000;
  stream.bytes = 64 * 1024;  // fits the shared L2
  MulticoreMachine two(multicore_config(2, false));
  // Both cores stream the same region: the second pass hits in shared L2.
  const MulticoreStats s = two.run({{stream, stream}, {stream, stream}});
  EXPECT_GT(s.shared_l2_hit_rate, 0.0);
  EXPECT_GT(s.dram_bytes, 0u);
  EXPECT_GT(s.total_energy, 0.0);
}

TEST(Multicore, ProgramCountMustMatchCores) {
  MulticoreMachine two(multicore_config(2, false));
  Op compute;
  compute.kind = OpKind::kCompute;
  compute.scalar_ops = 10;
  EXPECT_THROW(two.run({{compute}}), PreconditionError);
}

// ---- energy accounting --------------------------------------------------------

TEST(MachineEnergy, BreakdownPositiveAndConsistent) {
  AcceleratorConfig accel;
  accel.present = true;
  Machine m(core_config(), l1_config(), l2_config(), DramConfig{}, accel);
  const RunStats s = m.run(make_cnn_program(cifar_cnn(4)));
  EXPECT_GT(s.core_energy, 0.0);
  EXPECT_GT(s.memory_energy, 0.0);
  EXPECT_GT(s.accel_energy, 0.0);
  EXPECT_GT(s.transfer_energy, 0.0);
  EXPECT_GT(s.static_energy, 0.0);
  EXPECT_NEAR(s.total_energy(),
              s.core_energy + s.memory_energy + s.accel_energy + s.transfer_energy +
                  s.static_energy,
              1e-12);
}

TEST(MachineEnergy, ComputeOpEnergyExact) {
  EnergyConfig energy;
  Machine m(core_config(), l1_config(), l2_config(), DramConfig{}, AcceleratorConfig{}, energy);
  Op op;
  op.kind = OpKind::kCompute;
  op.scalar_ops = 1'000'000;
  const RunStats s = m.run({op});
  EXPECT_NEAR(s.core_energy, 1e6 * energy.core_energy_per_op, 1e-12);
  EXPECT_NEAR(s.static_energy, energy.static_power * s.total_time, 1e-12);
}

TEST(MachineEnergy, AcceleratorCutsMvmEnergy) {
  Op mvm;
  mvm.kind = OpKind::kMvm;
  mvm.rows = 512;
  mvm.cols = 512;
  mvm.repeat = 100;
  Machine baseline(core_config(), l1_config(), l2_config(), DramConfig{}, AcceleratorConfig{});
  AcceleratorConfig accel;
  accel.present = true;
  Machine accelerated(core_config(), l1_config(), l2_config(), DramConfig{}, accel);
  EXPECT_GT(baseline.run({mvm}).total_energy(), 3.0 * accelerated.run({mvm}).total_energy());
}

// ---- traces -----------------------------------------------------------------

TEST(Traces, CnnProgramHasWorkAndMacs) {
  const Program prog = make_cnn_program(cifar_cnn(6));
  EXPECT_GT(prog.size(), 20u);
  EXPECT_GT(program_macs(prog), 10'000'000u);
}

TEST(Traces, LstmAndTransformerBuild) {
  EXPECT_GT(program_macs(make_lstm_program(LstmSpec{})), 1'000'000u);
  EXPECT_GT(program_macs(make_transformer_program(TransformerSpec{})), 1'000'000u);
}

TEST(Traces, HdcProgramRespectsSearchOffloadability) {
  HdcTraceSpec spec;
  spec.queries = 4;
  AcceleratorConfig accel;
  accel.present = true;

  spec.search_offloadable = false;
  Machine m(core_config(), l1_config(), l2_config(), DramConfig{}, accel);
  const RunStats crossbar_only = m.run(make_hdc_program(spec));
  EXPECT_EQ(crossbar_only.offloads, 4u);          // encode only
  EXPECT_GT(crossbar_only.mvm_core_time, 0.0);    // search stays on the core

  spec.search_offloadable = true;
  Machine m2(core_config(), l1_config(), l2_config(), DramConfig{}, accel);
  const RunStats with_cam = m2.run(make_hdc_program(spec));
  EXPECT_EQ(with_cam.offloads, 8u);               // encode + search
  EXPECT_LT(with_cam.total_time, crossbar_only.total_time);
}

TEST(Traces, AcceleratorSpeedsUpCnnSubstantially) {
  // The Sec.-V experiment in miniature: crossbar offload must produce a
  // multi-x speedup on a conv-heavy workload, Amdahl-limited well below the
  // raw MVM ratio.
  AcceleratorConfig accel;
  accel.present = true;
  const double speedup = accelerator_speedup(core_config(), l1_config(), l2_config(),
                                             DramConfig{}, accel, make_cnn_program(cifar_cnn(6)));
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 200.0);
}

TEST(Traces, SpeedupDependsOnWorkload) {
  AcceleratorConfig accel;
  accel.present = true;
  const double cnn = accelerator_speedup(core_config(), l1_config(), l2_config(), DramConfig{},
                                         accel, make_cnn_program(cifar_cnn(8)));
  TransformerSpec tf;
  const double xformer = accelerator_speedup(core_config(), l1_config(), l2_config(),
                                             DramConfig{}, accel, make_transformer_program(tf));
  const double lstm = accelerator_speedup(core_config(), l1_config(), l2_config(), DramConfig{},
                                          accel, make_lstm_program(LstmSpec{}));
  // The transformer keeps attention on the core: lower speedup than the CNN.
  EXPECT_GT(cnn, xformer);
  // The LSTM's runtime is almost purely the gate MVM: it gains the most.
  EXPECT_GT(lstm, cnn);
}

}  // namespace
}  // namespace xlds::sim
