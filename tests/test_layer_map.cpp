// Tests for the bit-sliced DNN-layer -> tiled-crossbar mapper: quantisation
// bounds, digital-reference agreement on a clean datapath, from_dense
// equivalence, batched-vs-single bit-equality, and — the DNN-scale pipeline
// contract — thread-count invariance of a real trained layer (>= 256x512)
// running batched nodal MVMs across the tile fleet.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/layer.hpp"
#include "util/matrix.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "xbar/layer_map.hpp"

namespace xlds {
namespace {

class LayerMapTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

xbar::LayerMapConfig clean_config(std::size_t tile_rows, std::size_t tile_cols) {
  xbar::LayerMapConfig cfg;
  cfg.tiled.tile.rows = tile_rows;
  cfg.tiled.tile.cols = tile_cols;
  cfg.tiled.tile.apply_variation = false;
  cfg.tiled.tile.read_noise_rel = 0.0;
  cfg.tiled.tile.ir_drop = xbar::IrDropMode::kNone;
  // High-resolution converters so the digital reference comparison probes
  // the slicing arithmetic, not converter rounding.
  cfg.tiled.tile.adc.bits = 14;
  cfg.tiled.tile.dac.bits = 10;
  return cfg;
}

MatrixD random_weights(std::size_t in, std::size_t out, std::uint64_t seed) {
  MatrixD w(in, out);
  Rng rng(seed);
  for (double& v : w.data()) v = rng.uniform(-1.0, 1.0);
  return w;
}

MatrixD random_inputs(std::size_t batch, std::size_t in, std::uint64_t seed) {
  MatrixD x(batch, in);
  Rng rng(seed);
  for (double& v : x.data()) v = rng.uniform();
  return x;
}

TEST_F(LayerMapTest, QuantisedWeightsWithinHalfAnLsb) {
  const MatrixD w = random_weights(20, 14, 3);
  xbar::LayerMapConfig cfg = clean_config(16, 16);
  cfg.weight_bits = 4;
  cfg.slice_bits = 2;
  Rng rng(5);
  const xbar::MappedLayer mapped(cfg, w, rng);
  EXPECT_EQ(mapped.slice_count(), 2u);
  ASSERT_GT(mapped.scale(), 0.0);
  const double lsb = mapped.scale() / 15.0;  // 2^4 - 1 magnitude levels
  for (std::size_t r = 0; r < 20; ++r)
    for (std::size_t c = 0; c < 14; ++c)
      EXPECT_NEAR(mapped.quantised_weights()(r, c), w(r, c), 0.5 * lsb + 1e-12)
          << r << ',' << c;
}

TEST_F(LayerMapTest, ForwardMatchesDigitalReferenceOnCleanDatapath) {
  // No variation, no noise, ideal wires, high-resolution converters: the
  // analog forward must track W_q^T x to converter rounding.
  const MatrixD w = random_weights(40, 24, 7);
  xbar::LayerMapConfig cfg = clean_config(16, 16);
  cfg.weight_bits = 6;
  cfg.slice_bits = 2;  // three slices
  Rng rng(9);
  const xbar::MappedLayer mapped(cfg, w, rng);
  EXPECT_EQ(mapped.slice_count(), 3u);

  std::vector<double> x(40);
  Rng xfill(11);
  for (double& v : x) v = xfill.uniform();
  const auto analog = mapped.forward(x);
  const auto digital = mapped.ideal(x);
  ASSERT_EQ(analog.size(), digital.size());
  double scale = 0.0;
  for (double v : digital) scale = std::max(scale, std::abs(v));
  ASSERT_GT(scale, 0.0);
  for (std::size_t j = 0; j < digital.size(); ++j)
    EXPECT_NEAR(analog[j], digital[j], 0.05 * scale + 1e-9) << "output " << j;
}

TEST_F(LayerMapTest, FromDenseMatchesExplicitWeights) {
  Rng init(13);
  nn::DenseLayer layer(24, 18, init);
  xbar::LayerMapConfig cfg = clean_config(16, 16);
  Rng r1(17), r2(17);
  const xbar::MappedLayer from_dense = xbar::MappedLayer::from_dense(cfg, layer, r1);
  const xbar::MappedLayer explicit_w(cfg, layer.weights(), r2);

  std::vector<double> x(24);
  Rng xfill(19);
  for (double& v : x) v = xfill.uniform();
  const auto a = from_dense.forward(x);
  const auto b = explicit_w.forward(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]) << "output " << j;
}

TEST_F(LayerMapTest, BatchBitIdenticalToSequentialForward) {
  // Noise on, nodal IR drop: the RNG draw order and the per-slice solver
  // caches are part of the contract.
  xbar::LayerMapConfig cfg = clean_config(16, 16);
  cfg.tiled.tile.ir_drop = xbar::IrDropMode::kNodal;
  cfg.tiled.tile.read_noise_rel = 0.005;
  cfg.weight_bits = 4;
  cfg.slice_bits = 2;
  const MatrixD w = random_weights(24, 20, 23);
  const MatrixD xs = random_inputs(3, 24, 29);

  Rng r1(31), r2(31);
  const xbar::MappedLayer batched(cfg, w, r1);
  const xbar::MappedLayer single(cfg, w, r2);
  const MatrixD out = batched.forward_batch(xs);
  for (std::size_t b = 0; b < xs.rows(); ++b) {
    const std::vector<double> x(xs.row_data(b), xs.row_data(b) + 24);
    const auto y = single.forward(x);
    for (std::size_t j = 0; j < y.size(); ++j)
      EXPECT_EQ(out(b, j), y[j]) << "batch row " << b << " output " << j;
  }
}

TEST_F(LayerMapTest, RealLayerBatchedNodalMvmBitIdenticalAcrossThreadCounts) {
  // The DNN-scale pipeline acceptance: a real trained dense layer (256x512)
  // sharded onto a tiled fleet, batched nodal MVM through every tile, must
  // produce bit-identical outputs at 1 and 8 threads.
  const auto run = [](std::size_t threads) {
    set_parallel_threads(threads);
    Rng init(37);
    nn::DenseLayer layer(256, 512, init);
    xbar::LayerMapConfig cfg;
    cfg.tiled.tile.rows = 64;
    cfg.tiled.tile.cols = 64;
    cfg.tiled.tile.ir_drop = xbar::IrDropMode::kNodal;
    cfg.tiled.tile.read_noise_rel = 0.005;
    cfg.weight_bits = 4;
    cfg.slice_bits = 4;  // one 16-level slice: 4x16 tiles of 64x64 nodal solves
    Rng rng(41);
    const xbar::MappedLayer mapped = xbar::MappedLayer::from_dense(cfg, layer, rng);
    EXPECT_EQ(mapped.tile_count(), 64u);
    return mapped.forward_batch(random_inputs(2, 256, 43));
  };
  const MatrixD out_1t = run(1);
  const MatrixD out_8t = run(8);
  ASSERT_EQ(out_1t.rows(), out_8t.rows());
  ASSERT_EQ(out_1t.cols(), out_8t.cols());
  for (std::size_t i = 0; i < out_1t.size(); ++i)
    EXPECT_EQ(out_1t.data()[i], out_8t.data()[i]) << "flat index " << i;
}

TEST_F(LayerMapTest, CostAndDeviceCountsScaleWithSlices) {
  const MatrixD w = random_weights(32, 16, 47);
  xbar::LayerMapConfig one = clean_config(16, 16);
  one.weight_bits = 2;
  one.slice_bits = 2;
  xbar::LayerMapConfig two = clean_config(16, 16);
  two.weight_bits = 4;
  two.slice_bits = 2;
  Rng r1(53), r2(53);
  const xbar::MappedLayer m1(one, w, r1);
  const xbar::MappedLayer m2(two, w, r2);
  EXPECT_EQ(m1.slice_count(), 1u);
  EXPECT_EQ(m2.slice_count(), 2u);
  EXPECT_EQ(m2.device_count(), 2 * m1.device_count());
  EXPECT_GT(m2.mvm_cost().energy, m1.mvm_cost().energy);
  EXPECT_GE(m2.mvm_cost().latency, m1.mvm_cost().latency);
}

}  // namespace
}  // namespace xlds
