// Unit tests for the multi-process evaluation shard layer: the wire
// protocol's encode/decode and framing discipline, the persistent cross-run
// result cache, the fork-mode and exec-mode shard pool, worker-death
// recovery, the validated XLDS_* env parsing — and the headline acceptance
// property: a sharded exploration (even one whose worker is SIGKILLed
// mid-batch, even one served from a warm cache) produces journal bytes and
// results bit-identical to the in-process run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "dse/engine.hpp"
#include "dse/jobspec.hpp"
#include "shard/protocol.hpp"
#include "shard/result_cache.hpp"
#include "shard/shard_pool.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"

namespace xlds::shard {
namespace {

namespace fs = std::filesystem;

class TempPath {
 public:
  explicit TempPath(const std::string& stem)
      : path_((fs::temp_directory_path() /
               ("xlds_shard_" + stem + "_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this))))
                  .string()) {
    fs::remove(path_);
  }
  ~TempPath() { fs::remove(path_); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

core::Fom fom_fixture(double scale, bool feasible = true, const std::string& note = "") {
  core::Fom fom;
  fom.latency = 1.5e-6 * scale;
  fom.energy = 2.25e-7 * scale;
  fom.area_mm2 = 0.125 * scale;
  fom.accuracy = 0.75 + 0.001 * scale;
  fom.feasible = feasible;
  fom.note = note;
  return fom;
}

/// A pure synthetic evaluator: every FOM field is a distinct function of the
/// point's enums and the tier, so misrouted results are always detected.
core::Fom synth_eval(const core::DesignPoint& p, std::uint32_t tier) {
  core::Fom fom;
  const double d = static_cast<double>(p.device);
  const double a = static_cast<double>(p.arch);
  const double g = static_cast<double>(p.algo);
  const double t = static_cast<double>(tier);
  fom.latency = 1.0 + d + 0.1 * a + 0.01 * g + 0.001 * t;
  fom.energy = 2.0 + 10.0 * d + a + 0.1 * g + 0.01 * t;
  fom.area_mm2 = 3.0 + d * a + g;
  fom.accuracy = 0.5 + 0.001 * (d + a + g + t);
  fom.feasible = (static_cast<int>(p.device) + static_cast<int>(p.arch)) % 3 != 0;
  fom.note = p.to_string() + "@t" + std::to_string(tier);
  return fom;
}

std::vector<BatchItem> synth_batch(std::size_t n) {
  const auto& devices = device::all_device_kinds();
  const auto& archs = core::all_arch_kinds();
  const auto& algos = core::all_algo_kinds();
  std::vector<BatchItem> items;
  for (std::size_t i = 0; i < n; ++i) {
    BatchItem item;
    item.index = 1000 + i;
    item.point.device = devices[i % devices.size()];
    item.point.arch = archs[(i / 2) % archs.size()];
    item.point.algo = algos[(i / 3) % algos.size()];
    item.point.application = "isolet-like";
    items.push_back(std::move(item));
  }
  return items;
}

// ---------------------------------------------------------------- protocol

TEST(Protocol, HelloRoundTrips) {
  Hello in;
  in.job_hash = 0xdeadbeefcafef00dull;
  in.worker_threads = 3;
  in.job_json = "{\"application\":\"isolet-like\"}";
  Hello out;
  ASSERT_TRUE(decode_hello(encode_hello(in), out));
  EXPECT_EQ(out.job_hash, in.job_hash);
  EXPECT_EQ(out.worker_threads, in.worker_threads);
  EXPECT_EQ(out.job_json, in.job_json);

  HelloAck ack_in{0x1234u, 4242};
  HelloAck ack_out;
  ASSERT_TRUE(decode_hello_ack(encode_hello_ack(ack_in), ack_out));
  EXPECT_EQ(ack_out.job_hash, ack_in.job_hash);
  EXPECT_EQ(ack_out.pid, ack_in.pid);
}

TEST(Protocol, EvalMessagesRoundTripBitExactly) {
  EvalRequest req;
  req.request_id = 77;
  req.tier = 3;
  req.points = {{11, 1, 2, 3}, {12, 4, 5, 0}};
  EvalRequest req_out;
  ASSERT_TRUE(decode_eval_request(encode_eval_request(req), req_out));
  EXPECT_EQ(req_out.request_id, 77u);
  EXPECT_EQ(req_out.tier, 3u);
  ASSERT_EQ(req_out.points.size(), 2u);
  EXPECT_EQ(req_out.points[1].index, 12u);
  EXPECT_EQ(req_out.points[1].device, 4u);

  EvalResult res;
  res.request_id = 77;
  res.tier = 3;
  res.foms = {fom_fixture(1.0), fom_fixture(2.0, false, "culled: note, with comma")};
  res.busy_ns = 123456789;
  res.nodal.factorizations = 5;
  res.sched.stolen_tasks = 9;
  EvalResult res_out;
  ASSERT_TRUE(decode_eval_result(encode_eval_result(res), res_out));
  ASSERT_EQ(res_out.foms.size(), 2u);
  // Bit-exact doubles, not approximately equal: the journal-identity
  // guarantee rides on this.
  EXPECT_EQ(res_out.foms[0].latency, res.foms[0].latency);
  EXPECT_EQ(res_out.foms[1].accuracy, res.foms[1].accuracy);
  EXPECT_FALSE(res_out.foms[1].feasible);
  EXPECT_EQ(res_out.foms[1].note, "culled: note, with comma");
  EXPECT_EQ(res_out.busy_ns, 123456789u);
  EXPECT_EQ(res_out.nodal.factorizations, 5u);
  EXPECT_EQ(res_out.sched.stolen_tasks, 9u);

  EvalError err{42, "boom: past the budget"};
  EvalError err_out;
  ASSERT_TRUE(decode_eval_error(encode_eval_error(err), err_out));
  EXPECT_EQ(err_out.request_id, 42u);
  EXPECT_EQ(err_out.message, err.message);
}

TEST(Protocol, DecodersRejectMalformedBodies) {
  const std::string good = encode_eval_result([] {
    EvalResult r;
    r.request_id = 1;
    r.foms = {fom_fixture(1.0)};
    return r;
  }());
  EvalResult out;
  // Truncated at every prefix length: never accepted, never crashes.
  for (std::size_t len = 0; len < good.size(); ++len)
    EXPECT_FALSE(decode_eval_result(good.substr(0, len), out)) << "prefix " << len;
  // Trailing junk is rejected too (a frame is exactly one message).
  EXPECT_FALSE(decode_eval_result(good + "x", out));
  // Wrong type byte.
  Hello hello;
  EXPECT_FALSE(decode_hello(good, hello));
  // decode_type rejects empty and unknown type bytes.
  MsgType type;
  EXPECT_FALSE(decode_type("", type));
  EXPECT_FALSE(decode_type(std::string(1, '\x63'), type));
  ASSERT_TRUE(decode_type(good, type));
  EXPECT_EQ(type, MsgType::kEvalResult);
}

TEST(Protocol, FramesSurviveTheSocketAndCorruptionIsDetected) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string body = encode_shutdown() + std::string(100, 'z');  // arbitrary bytes

  ASSERT_TRUE(write_frame(sv[0], body));
  std::string got;
  ASSERT_EQ(read_frame(sv[1], got), ReadStatus::kOk);
  EXPECT_EQ(got, body);

  // Flip one payload byte in a manually framed copy: checksum must catch it.
  {
    std::string framed;
    const std::uint32_t len = static_cast<std::uint32_t>(body.size());
    framed.append(reinterpret_cast<const char*>(&len), sizeof len);
    framed.append(body);
    const std::uint64_t sum = util::fnv1a64(body.data(), body.size());
    framed.append(reinterpret_cast<const char*>(&sum), sizeof sum);
    framed[sizeof len + 5] ^= 0x40;
    ASSERT_EQ(::send(sv[0], framed.data(), framed.size(), 0),
              static_cast<ssize_t>(framed.size()));
    EXPECT_EQ(read_frame(sv[1], got), ReadStatus::kCorrupt);
  }

  // A peer that dies mid-frame: kCorrupt, not a silent short read.
  ASSERT_TRUE(write_frame(sv[0], body));
  int sv2[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv2), 0);
  const std::uint32_t big = 1000;
  ASSERT_EQ(::send(sv2[0], &big, sizeof big, 0), static_cast<ssize_t>(sizeof big));
  ::close(sv2[0]);
  EXPECT_EQ(read_frame(sv2[1], got), ReadStatus::kCorrupt);
  ::close(sv2[1]);

  // A cleanly closed peer between frames: kEof.
  ASSERT_EQ(read_frame(sv[1], got), ReadStatus::kOk);
  ::close(sv[0]);
  EXPECT_EQ(read_frame(sv[1], got), ReadStatus::kEof);
  ::close(sv[1]);
}

// ------------------------------------------------------------ result cache

TEST(ResultCache, RoundTripsAcrossReopen) {
  TempPath path("cache");
  const core::Fom fom = fom_fixture(3.0, true, "note with, comma");
  {
    ResultCache cache(path.str());
    EXPECT_FALSE(cache.stats().existed);
    EXPECT_EQ(cache.find(1, 2, 3), nullptr);  // miss
    cache.insert(1, 2, 3, fom);
    const core::Fom* hit = cache.find(1, 2, 3);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->latency, fom.latency);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
  }
  {
    ResultCache cache(path.str());
    EXPECT_TRUE(cache.stats().existed);
    EXPECT_EQ(cache.stats().loaded, 1u);
    const core::Fom* hit = cache.find(1, 2, 3);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->latency, fom.latency);
    EXPECT_EQ(hit->energy, fom.energy);
    EXPECT_EQ(hit->accuracy, fom.accuracy);
    EXPECT_EQ(hit->note, fom.note);
    // Different tier / point / space: distinct keys, all misses.
    EXPECT_EQ(cache.find(1, 2, 0), nullptr);
    EXPECT_EQ(cache.find(1, 9, 3), nullptr);
    EXPECT_EQ(cache.find(9, 2, 3), nullptr);
  }
  // Both runs closed with lookups -> two session records on disk.
  const ResultCache::InspectInfo info = ResultCache::inspect(path.str());
  EXPECT_EQ(info.results.size(), 1u);
  EXPECT_EQ(info.sessions.size(), 2u);
  EXPECT_EQ(info.sessions[0].hits, 1u);
  EXPECT_EQ(info.sessions[0].misses, 1u);
  EXPECT_EQ(info.dropped_bytes, 0u);
}

TEST(ResultCache, TruncatesTornTailOnOpenAndInspectReportsIt) {
  TempPath path("torn");
  {
    ResultCache cache(path.str());
    cache.insert(1, 1, 1, fom_fixture(1.0));
    cache.insert(1, 2, 1, fom_fixture(2.0));
  }
  // Append half a record's worth of garbage, as a crash mid-append would.
  const std::size_t intact = fs::file_size(path.str());
  {
    std::ofstream out(path.str(), std::ios::binary | std::ios::app);
    out << "torn-rec";
  }
  EXPECT_EQ(ResultCache::inspect(path.str()).dropped_bytes, 8u);
  {
    ResultCache cache(path.str());
    EXPECT_EQ(cache.stats().loaded, 2u);
    EXPECT_EQ(cache.stats().dropped_bytes, 8u);
  }
  EXPECT_EQ(fs::file_size(path.str()), intact);  // truncated back to the good prefix

  // A corrupted byte *inside* an intact record drops it and everything after.
  {
    std::fstream f(path.str(), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(intact) - 20);
    f.put('\x7f');
  }
  const ResultCache::InspectInfo info = ResultCache::inspect(path.str());
  EXPECT_LT(info.results.size(), 2u);
  EXPECT_GT(info.dropped_bytes, 0u);
}

TEST(ResultCache, RejectsForeignFiles) {
  TempPath path("foreign");
  {
    std::ofstream out(path.str(), std::ios::binary);
    out << "this is not a cache file at all";
  }
  EXPECT_THROW(ResultCache cache(path.str()), PreconditionError);
  EXPECT_THROW(ResultCache::inspect(path.str()), PreconditionError);
}

TEST(ResultCache, PointHashSeparatesAxesAndApplication) {
  core::DesignPoint a;
  a.device = device::DeviceKind::kRram;
  a.arch = core::ArchKind::kCamAccelerator;
  a.algo = core::AlgoKind::kHdc;
  core::DesignPoint b = a;
  EXPECT_EQ(cache_point_hash(a), cache_point_hash(b));
  b.algo = core::AlgoKind::kMann;
  EXPECT_NE(cache_point_hash(a), cache_point_hash(b));
  b = a;
  b.application = "mnist-like";
  EXPECT_NE(cache_point_hash(a), cache_point_hash(b));
}

// -------------------------------------------------------------- shard pool

ShardConfig synth_config(std::size_t shards) {
  ShardConfig cfg;
  cfg.shards = shards;
  cfg.worker_threads = 1;
  cfg.job_hash = 0xab5ull;
  cfg.application = "isolet-like";
  cfg.evaluator = synth_eval;
  return cfg;
}

TEST(ShardPool, MatchesDirectEvaluationInOrder) {
  ShardPool pool(synth_config(3));
  const std::vector<BatchItem> items = synth_batch(23);
  const BatchResult got = pool.evaluate(items, 2);
  ASSERT_EQ(got.foms.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const core::Fom want = synth_eval(items[i].point, 2);
    EXPECT_EQ(got.foms[i].latency, want.latency) << i;
    EXPECT_EQ(got.foms[i].energy, want.energy) << i;
    EXPECT_EQ(got.foms[i].feasible, want.feasible) << i;
    EXPECT_EQ(got.foms[i].note, want.note) << i;
  }
  EXPECT_GE(pool.stats().requests, 1u);
  EXPECT_EQ(pool.stats().respawns, 0u);

  // A second batch on the same pool (tier changes too).
  const BatchResult again = pool.evaluate(synth_batch(5), 1);
  ASSERT_EQ(again.foms.size(), 5u);
  EXPECT_EQ(again.foms[4].note, synth_eval(items[4].point, 1).note);

  // Empty batch is a no-op.
  EXPECT_TRUE(pool.evaluate({}, 1).foms.empty());
}

TEST(ShardPool, RecoversFromSigkilledWorkerMidBatch) {
  ShardConfig cfg = synth_config(3);
  cfg.max_points_per_request = 2;
  cfg.kill_worker_after_results = 3;  // SIGKILL a worker early in the batch
  cfg.evaluator = [](const core::DesignPoint& p, std::uint32_t tier) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // keep work in flight
    return synth_eval(p, tier);
  };
  ShardPool pool(std::move(cfg));
  const std::vector<BatchItem> items = synth_batch(40);
  const BatchResult got = pool.evaluate(items, 3);
  EXPECT_GE(pool.stats().respawns, 1u);
  ASSERT_EQ(got.foms.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_EQ(got.foms[i].note, synth_eval(items[i].point, 3).note) << i;
}

TEST(ShardPool, EvaluatorExceptionsRethrowAtLowestBatchPosition) {
  ShardConfig cfg = synth_config(2);
  cfg.max_points_per_request = 1;
  cfg.evaluator = [](const core::DesignPoint& p, std::uint32_t tier) {
    XLDS_REQUIRE_MSG(p.algo != core::AlgoKind::kMann, "no mann allowed in this test");
    return synth_eval(p, tier);
  };
  ShardPool pool(std::move(cfg));
  std::vector<BatchItem> items = synth_batch(8);
  items[2].point.algo = core::AlgoKind::kMann;
  items[6].point.algo = core::AlgoKind::kMann;
  try {
    pool.evaluate(items, 1);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("no mann allowed"), std::string::npos);
  }
  // The pool survives a failed batch: workers kept serving.
  const BatchResult ok = pool.evaluate(synth_batch(4), 1);
  EXPECT_EQ(ok.foms.size(), 4u);
}

TEST(ShardPool, RejectsJobHashMismatchInExecMode) {
#ifdef XLDS_SHARD_WORKER_BIN
  ShardConfig cfg;
  cfg.shards = 1;
  cfg.worker_threads = 1;
  cfg.exec_path = XLDS_SHARD_WORKER_BIN;
  cfg.application = "isolet-like";
  cfg.job_hash = 0x1234;  // not what the worker will derive from the spec
  cfg.job_json = "{\"application\":\"isolet-like\"}";
  EXPECT_THROW(ShardPool pool(std::move(cfg)), PreconditionError);
#else
  GTEST_SKIP() << "worker binary path not compiled in";
#endif
}

// ------------------------------------------------- engine-level acceptance

dse::EngineConfig engine_config(std::uint64_t seed = 11) {
  dse::EngineConfig config;
  config.application = "isolet-like";
  config.strategy = "nsga2";
  config.budget = 40;
  config.seed = seed;
  config.fidelity.max_fidelity = dse::Fidelity::kNodal;
  return config;
}

bool same_results(const dse::ExplorationResult& a, const dse::ExplorationResult& b) {
  if (a.evaluated.size() != b.evaluated.size() || a.front != b.front ||
      a.ranking != b.ranking)
    return false;
  for (std::size_t i = 0; i < a.evaluated.size(); ++i) {
    const core::Fom& fa = a.evaluated[i].fom;
    const core::Fom& fb = b.evaluated[i].fom;
    if (a.evaluated[i].point.to_string() != b.evaluated[i].point.to_string() ||
        a.tiers[i] != b.tiers[i] || fa.latency != fb.latency || fa.energy != fb.energy ||
        fa.area_mm2 != fb.area_mm2 || fa.accuracy != fb.accuracy ||
        fa.feasible != fb.feasible || fa.note != fb.note)
      return false;
  }
  return true;
}

TEST(Acceptance, ShardedRunIsBitIdenticalToInProcess) {
  TempPath j_inproc("inproc");
  TempPath j_sharded("sharded");

  dse::EngineConfig config = engine_config();
  config.journal_path = j_inproc.str();
  const dse::ExplorationResult inproc = dse::explore(config);

  config.journal_path = j_sharded.str();
  config.shards = 2;
  const dse::ExplorationResult sharded = dse::explore(config);

  EXPECT_EQ(sharded.stats.shards_used, 2u);
  EXPECT_GE(sharded.stats.shard_requests, 1u);
  EXPECT_TRUE(same_results(inproc, sharded));
  EXPECT_EQ(read_bytes(j_inproc.str()), read_bytes(j_sharded.str()));
}

TEST(Acceptance, WorkerDeathMidRunKeepsJournalBytesIdentical) {
  TempPath j_clean("clean");
  TempPath j_killed("killed");

  dse::EngineConfig config = engine_config(13);
  config.journal_path = j_clean.str();
  const dse::ExplorationResult clean = dse::explore(config);

  config.journal_path = j_killed.str();
  config.shards = 2;
  config.kill_shard_worker_after = 3;
  const dse::ExplorationResult killed = dse::explore(config);

  EXPECT_GE(killed.stats.shard_respawns, 1u);
  EXPECT_TRUE(same_results(clean, killed));
  EXPECT_EQ(read_bytes(j_clean.str()), read_bytes(j_killed.str()));
}

TEST(Acceptance, WarmCacheServesEverythingAndChangesNoBytes) {
  TempPath cache("warm");
  TempPath j_cold("cold");
  TempPath j_warm("warmj");

  dse::EngineConfig config = engine_config(17);
  config.cache_path = cache.str();
  config.journal_path = j_cold.str();
  const dse::ExplorationResult cold = dse::explore(config);
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_EQ(cold.stats.cache_appends, cold.stats.computed);
  EXPECT_GT(cold.stats.cache_appends, 0u);

  config.journal_path = j_warm.str();
  const dse::ExplorationResult warm = dse::explore(config);
  EXPECT_EQ(warm.stats.computed, 0u);
  EXPECT_EQ(warm.stats.cache_hits, cold.stats.computed);
  EXPECT_TRUE(same_results(cold, warm));
  EXPECT_EQ(read_bytes(j_cold.str()), read_bytes(j_warm.str()));
}

TEST(Acceptance, CacheIsSharedAcrossOverlappingJobSpaces) {
  TempPath cache("overlap");

  // Full-grid job populates the cache...
  dse::EngineConfig config = engine_config(19);
  config.cache_path = cache.str();
  const dse::ExplorationResult full = dse::explore(config);
  EXPECT_GT(full.stats.cache_appends, 0u);

  // ...and a job restricted to a sub-space reuses the overlapping entries:
  // same ladder + application, different axes, same cache keys.
  dse::EngineConfig restricted = engine_config(23);
  restricted.cache_path = cache.str();
  restricted.budget = 10;
  restricted.axes.archs = {core::ArchKind::kCamAccelerator, core::ArchKind::kGpu,
                           core::ArchKind::kCrossbarAccelerator};
  const dse::ExplorationResult sub = dse::explore(restricted);
  EXPECT_GT(sub.stats.cache_hits, 0u);
}

TEST(Acceptance, ShardsComposeWithJournalResume) {
  TempPath journal("resume");

  // Crash a sharded run part-way via the abort hook...
  dse::EngineConfig config = engine_config(29);
  config.journal_path = journal.str();
  config.shards = 2;
  config.abort_after_computed = 7;
  EXPECT_THROW(dse::explore(config), dse::AbortInjected);

  // ...resume it sharded, and compare against an uninterrupted in-process run.
  config.abort_after_computed = 0;
  const dse::ExplorationResult resumed = dse::explore(config);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_GT(resumed.stats.journal_hits, 0u);

  dse::EngineConfig clean = engine_config(29);
  clean.shards = 1;
  EXPECT_TRUE(same_results(dse::explore(clean), resumed));
}

// --------------------------------------------------------------- exec mode

TEST(ExecMode, StandaloneWorkerBinaryMatchesForkMode) {
#ifdef XLDS_SHARD_WORKER_BIN
  // The engine's fork-mode path, versus a pool exec'ing the real worker
  // binary with the engine's own job spec: the Hello JSON must carry enough
  // for the fresh process to derive the same hash and the same FOMs.
  dse::EngineConfig config = engine_config(31);
  const dse::SearchSpace space(config.axes, config.application);
  const dse::FidelityLadder ladder(config.fidelity, core::profile_for(config.application));

  ShardConfig cfg;
  cfg.shards = 2;
  cfg.worker_threads = 1;
  cfg.exec_path = XLDS_SHARD_WORKER_BIN;
  cfg.application = config.application;
  cfg.job_hash = dse::job_hash(space, ladder);
  cfg.job_json = dse::shard_job_spec_text(config);
  ShardPool pool(std::move(cfg));

  std::vector<BatchItem> items;
  for (std::size_t i = 0; i < space.size() && items.size() < 12; ++i) {
    if (space.culled(i)) continue;
    items.push_back({i, space.at(i)});
  }
  const BatchResult got =
      pool.evaluate(items, static_cast<std::uint32_t>(dse::Fidelity::kNodal));
  ASSERT_EQ(got.foms.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const core::Fom want = ladder.evaluate(items[i].point, dse::Fidelity::kNodal);
    EXPECT_EQ(got.foms[i].latency, want.latency) << i;
    EXPECT_EQ(got.foms[i].energy, want.energy) << i;
    EXPECT_EQ(got.foms[i].accuracy, want.accuracy) << i;
    EXPECT_EQ(got.foms[i].note, want.note) << i;
  }
#else
  GTEST_SKIP() << "worker binary path not compiled in";
#endif
}

// ------------------------------------------------------------- env parsing

TEST(Env, ParsePositiveCountIsStrict) {
  using util::parse_positive_count;
  EXPECT_EQ(parse_positive_count("1"), 1u);
  EXPECT_EQ(parse_positive_count("64"), 64u);
  EXPECT_EQ(parse_positive_count("0"), std::nullopt);
  EXPECT_EQ(parse_positive_count(""), std::nullopt);
  EXPECT_EQ(parse_positive_count("-3"), std::nullopt);
  EXPECT_EQ(parse_positive_count("+3"), std::nullopt);
  EXPECT_EQ(parse_positive_count(" 3"), std::nullopt);
  EXPECT_EQ(parse_positive_count("3 "), std::nullopt);
  EXPECT_EQ(parse_positive_count("3x"), std::nullopt);
  EXPECT_EQ(parse_positive_count("0x10"), std::nullopt);
  EXPECT_EQ(parse_positive_count("99999999999999999999999999"), std::nullopt);  // overflow
}

TEST(Env, EnvHelpersWarnAndFallBack) {
  ::setenv("XLDS_SHARDS", "4", 1);
  EXPECT_EQ(env_shard_count(), 4u);
  ::setenv("XLDS_SHARDS", "zero", 1);
  EXPECT_EQ(env_shard_count(), 1u);  // + a one-line stderr warning
  ::setenv("XLDS_SHARDS", "0", 1);
  EXPECT_EQ(env_shard_count(), 1u);
  ::unsetenv("XLDS_SHARDS");
  EXPECT_EQ(env_shard_count(), 1u);

  static const char* const kModes[] = {"steal", "static", nullptr};
  ::setenv("XLDS_TEST_CHOICE", "static", 1);
  EXPECT_EQ(util::env_choice("XLDS_TEST_CHOICE", kModes, "steal"), "static");
  ::setenv("XLDS_TEST_CHOICE", "dynamic", 1);
  EXPECT_EQ(util::env_choice("XLDS_TEST_CHOICE", kModes, "steal"), "steal");
  ::unsetenv("XLDS_TEST_CHOICE");
  EXPECT_EQ(util::env_choice("XLDS_TEST_CHOICE", kModes, "steal"), "steal");
}

// -------------------------------------------------------------- fork safety

TEST(ForkSafety, QuiesceThenParallelRebuildsAndResultsAreUnchanged) {
  set_parallel_threads(4);
  const auto sum_squares = [] {
    return parallel_sum(1000, 0, [](std::size_t i) { return static_cast<double>(i * i); });
  };
  const double before = sum_squares();
  parallel_quiesce_for_fork();
  // The pool lazily rebuilds on the next call; values are unchanged.
  EXPECT_EQ(sum_squares(), before);
  parallel_quiesce_for_fork();
  parallel_quiesce_for_fork();  // idempotent
  EXPECT_EQ(sum_squares(), before);
  set_parallel_threads(0);
}

}  // namespace
}  // namespace xlds::shard
