// Tests for the compute-kernel layer (src/kernels/).
//
// The layer's contract is equality, not approximation: packed Hamming must
// match the scalar digit/sign loops bit-for-bit, the tiled MVM must produce
// the exact doubles of the naive reference (same accumulation order), and the
// sequence-compatible samplers must consume the Rng exactly as the per-call
// loops they replace.  Edge cases the packing must survive: dimensions that
// are not multiples of 64, zero-length vectors, and the all-ties sign vector.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cam/types.hpp"
#include "device/fefet.hpp"
#include "kernels/bitpack.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/mvm.hpp"
#include "kernels/sampler.hpp"
#include "mann/lsh.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace xlds {
namespace {

using kernels::PackedBits;
using kernels::PackedTernary;

// ---- bitpack ---------------------------------------------------------------

TEST(Bitpack, PackUnpackRoundtripAtAwkwardDims) {
  // 1..130 covers: below one word, exactly one word (64), one-past (65),
  // exactly two words (128) and past (129, 130).
  Rng rng(42);
  for (std::size_t n = 1; n <= 130; ++n) {
    std::vector<int> d(n);
    for (auto& v : d) v = rng.bernoulli(0.5) ? 1 : 0;
    const PackedBits p = kernels::pack_bits(d);
    EXPECT_EQ(p.bits, n);
    EXPECT_EQ(p.words.size(), kernels::word_count(n));
    EXPECT_EQ(kernels::unpack_bits(p), d) << "dim " << n;
  }
}

TEST(Bitpack, TailBitsAreZero) {
  // 65 ones: word 1 must hold exactly one set bit, not garbage.
  const std::vector<int> d(65, 1);
  const PackedBits p = kernels::pack_bits(d);
  ASSERT_EQ(p.words.size(), 2u);
  EXPECT_EQ(p.words[0], ~std::uint64_t{0});
  EXPECT_EQ(p.words[1], std::uint64_t{1});
}

TEST(Bitpack, ZeroLengthVectors) {
  const PackedBits a = kernels::pack_bits(std::vector<int>{});
  const PackedBits b = kernels::pack_signs(std::vector<double>{});
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(kernels::hamming(a, b), 0u);
  EXPECT_EQ(kernels::sign_dot(a, b), 0);
  EXPECT_TRUE(kernels::unpack_bits(a).empty());
}

TEST(Bitpack, AllTiesPacksAsPositive) {
  // Sign convention: v >= 0 packs as 1, so the all-zero ("all ties") vector
  // is all-ones and its Hamming distance to an all-positive vector is 0.
  const std::vector<double> zeros(100, 0.0);
  const std::vector<double> pos(100, 1.0);
  const std::vector<double> neg(100, -1.0);
  EXPECT_EQ(kernels::hamming(kernels::pack_signs(zeros), kernels::pack_signs(pos)), 0u);
  EXPECT_EQ(kernels::hamming(kernels::pack_signs(zeros), kernels::pack_signs(neg)), 100u);
  EXPECT_EQ(kernels::sign_dot(kernels::pack_signs(zeros), kernels::pack_signs(pos)), 100);
}

TEST(Bitpack, PackedHammingMatchesScalarReference) {
  Rng rng(7);
  for (std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 1000u, 4096u}) {
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.uniform(-1.0, 1.0);
      b[i] = rng.uniform(-1.0, 1.0);
    }
    const std::size_t ref = kernels::hamming_ref(a.data(), b.data(), n);
    const std::size_t packed =
        kernels::hamming(kernels::pack_signs(a), kernels::pack_signs(b));
    EXPECT_EQ(packed, ref) << "dim " << n;
    // sign_dot is the affine image n - 2h of the same popcount.
    EXPECT_EQ(kernels::sign_dot(kernels::pack_signs(a), kernels::pack_signs(b)),
              static_cast<long long>(n) - 2 * static_cast<long long>(ref));
  }
}

TEST(Bitpack, PackedDigitsMatchScalarReference) {
  Rng rng(11);
  for (std::size_t n : {1u, 64u, 65u, 500u}) {
    std::vector<int> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.bernoulli(0.5) ? 1 : 0;
      b[i] = rng.bernoulli(0.5) ? 1 : 0;
    }
    EXPECT_EQ(kernels::hamming(kernels::pack_bits(a), kernels::pack_bits(b)),
              kernels::hamming_digits_ref(a.data(), b.data(), n))
        << "dim " << n;
  }
}

TEST(Bitpack, MismatchedLengthsRejected) {
  const PackedBits a = kernels::pack_bits(std::vector<int>(10, 1));
  const PackedBits b = kernels::pack_bits(std::vector<int>(11, 1));
  EXPECT_THROW(kernels::hamming(a, b), PreconditionError);
}

// ---- ternary signatures ----------------------------------------------------

TEST(Ternary, DistanceMatchesSignatureDistance) {
  Rng rng(13);
  for (std::size_t n : {1u, 63u, 64u, 65u, 200u}) {
    mann::Signature a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double ua = rng.uniform();
      a[i] = ua < 0.2 ? cam::kDontCare : (ua < 0.6 ? 1 : 0);
      const double ub = rng.uniform();
      b[i] = ub < 0.2 ? cam::kDontCare : (ub < 0.6 ? 1 : 0);
    }
    EXPECT_EQ(mann::signature_distance(mann::pack_signature(a), mann::pack_signature(b)),
              mann::signature_distance(a, b))
        << "dim " << n;
  }
}

TEST(Ternary, DontCareMatchesEverything) {
  const mann::Signature all_x(70, cam::kDontCare);
  mann::Signature bits(70);
  Rng rng(3);
  for (auto& v : bits) v = rng.bernoulli(0.5) ? 1 : 0;
  EXPECT_EQ(mann::signature_distance(mann::pack_signature(all_x), mann::pack_signature(bits)),
            0u);
}

// ---- MVM -------------------------------------------------------------------

TEST(Mvm, TiledMatchesReferenceExactly) {
  Rng rng(17);
  // Includes single-row, single-column, 1x1, and a shape wider than the
  // column tile so the tiling loop runs more than once.
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {1, 1}, {1, 7}, {7, 1}, {3, 64}, {64, 3}, {33, 129}, {16, 3000}};
  for (const auto& [rows, cols] : shapes) {
    std::vector<double> a(rows * cols), x(rows);
    for (auto& v : a) v = rng.uniform(-1.0, 1.0);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    x[0] = 0.0;  // exercise the zero-row skip
    std::vector<double> y(cols), y_ref(cols);
    kernels::matvec_t(a.data(), rows, cols, x.data(), y.data());
    kernels::matvec_t_ref(a.data(), rows, cols, x.data(), y_ref.data());
    for (std::size_t c = 0; c < cols; ++c)
      EXPECT_EQ(y[c], y_ref[c]) << rows << 'x' << cols << " col " << c;
  }
}

TEST(Mvm, DotMatchesPlainLoop) {
  Rng rng(19);
  std::vector<double> a(777), b(777);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform(-1.0, 1.0);
    b[i] = rng.uniform(-1.0, 1.0);
  }
  double ref = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) ref += a[i] * b[i];
  EXPECT_EQ(kernels::dot(a.data(), b.data(), a.size()), ref);
}

TEST(Mvm, SmallHelpers) {
  const std::vector<double> v = {3.0, 1.0, -2.0, 5.0};
  std::vector<double> out(2);
  kernels::diff_pairs(v.data(), 2, 2.0, out.data());
  EXPECT_EQ(out[0], 4.0);
  EXPECT_EQ(out[1], -14.0);

  std::vector<double> y = {1.0, 2.0};
  kernels::accumulate(v.data(), y.data(), 2);
  EXPECT_EQ(y[0], 4.0);
  EXPECT_EQ(y[1], 3.0);

  kernels::scale(v.data(), -1.0, y.data(), 2);
  EXPECT_EQ(y[0], -3.0);
  EXPECT_EQ(y[1], -1.0);

  std::vector<double> z(2);
  kernels::scale_sub(v.data(), 2.0, y.data(), z.data(), 2);
  EXPECT_EQ(z[0], 6.0 - (-3.0));
  EXPECT_EQ(z[1], 2.0 - (-1.0));

  kernels::mul_add(v.data(), v.data(), z.data(), 2);
  EXPECT_EQ(z[0], 9.0 + 9.0);
  EXPECT_EQ(z[1], 3.0 + 1.0);
}

// ---- samplers --------------------------------------------------------------

TEST(Sampler, FillUniformIsSequenceIdentical) {
  Rng a(123), b(123);
  std::vector<double> block(257);
  kernels::fill_uniform(a, block.data(), block.size());
  for (double v : block) EXPECT_EQ(v, b.uniform());
  // Generators remain in lockstep afterwards.
  EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Sampler, FillNormalIsSequenceIdentical) {
  Rng a(321), b(321);
  std::vector<double> block(101);  // odd: leaves a cached spare in flight
  kernels::fill_normal(a, block.data(), block.size(), 1.5, 0.25);
  for (double v : block) EXPECT_EQ(v, b.normal(1.5, 0.25));
  // The polar method's spare must carry across the block boundary too.
  std::vector<double> more(3);
  kernels::fill_normal(a, more.data(), more.size());
  for (double v : more) EXPECT_EQ(v, b.normal(0.0, 1.0));
}

TEST(Sampler, FillBernoulliIsSequenceIdentical) {
  Rng a(55), b(55);
  std::vector<std::uint8_t> block(500);
  kernels::fill_bernoulli(a, block.data(), block.size(), 0.3);
  for (std::uint8_t v : block) EXPECT_EQ(v != 0, b.bernoulli(0.3));
}

TEST(Sampler, FillExponentialIsSequenceIdentical) {
  Rng a(77), b(77);
  std::vector<double> block(333);
  kernels::fill_exponential(a, block.data(), block.size(), 4.0);
  for (double v : block) EXPECT_EQ(v, -std::log1p(-b.uniform()) / 4.0);
  EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Sampler, FillExponentialMomentsAndPositivity) {
  Rng rng(2024);
  const double rate = 2.5;
  std::vector<double> block(200000);
  kernels::fill_exponential(rng, block.data(), block.size(), rate);
  double sum = 0.0;
  for (double v : block) {
    ASSERT_GT(v, 0.0);
    ASSERT_TRUE(std::isfinite(v));
    sum += v;
  }
  const double mean = sum / static_cast<double>(block.size());
  // Standard error of the mean is (1/rate)/sqrt(n) ~ 9e-4; 5 sigma.
  EXPECT_NEAR(mean, 1.0 / rate, 5e-3);
}

TEST(Sampler, ZeroLengthFillsConsumeNothing) {
  Rng a(9), b(9);
  kernels::fill_uniform(a, nullptr, 0);
  kernels::fill_normal(a, nullptr, 0);
  kernels::fill_bernoulli(a, nullptr, 0, 0.5);
  kernels::fill_exponential(a, nullptr, 0, 1.0);
  kernels::fill_normal_fast(a, nullptr, 0);
  EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Sampler, NormalIcdfAccuracyAgainstErf) {
  // Invert via the CDF: Phi(icdf(p)) must recover p.  Acklam's approximation
  // claims |relative error| < 1.15e-9 on the quantile; the round trip through
  // the exact std::erf CDF stays well under 1e-8 in probability.
  for (double p : {1e-12, 1e-6, 0.02425, 0.1, 0.3, 0.5, 0.7, 0.9, 0.97575, 1 - 1e-6}) {
    const double x = kernels::normal_icdf(p);
    const double round_trip = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(round_trip, p, 1e-8 * std::max(1.0, std::abs(x))) << "p " << p;
  }
  EXPECT_EQ(kernels::normal_icdf(0.5), 0.0);
}

TEST(Sampler, NormalIcdfIsMonotone) {
  double prev = -HUGE_VAL;
  for (int i = 1; i < 2000; ++i) {
    const double p = static_cast<double>(i) / 2000.0;
    const double x = kernels::normal_icdf(p);
    EXPECT_GT(x, prev) << "p " << p;
    prev = x;
  }
}

TEST(Sampler, FillNormalFastMomentsAndDeterminism) {
  Rng rng(2024);
  std::vector<double> block(200000);
  kernels::fill_normal_fast(rng, block.data(), block.size(), 2.0, 3.0);
  double mean = 0.0;
  for (double v : block) mean += v;
  mean /= static_cast<double>(block.size());
  double var = 0.0;
  for (double v : block) var += (v - mean) * (v - mean);
  var /= static_cast<double>(block.size());
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);

  // Pure function of the Rng state: same seed, same block.
  Rng again(2024);
  std::vector<double> block2(block.size());
  kernels::fill_normal_fast(again, block2.data(), block2.size(), 2.0, 3.0);
  EXPECT_EQ(block, block2);
}

// ---- cross-layer determinism ----------------------------------------------

TEST(Kernels, BatchedMcSweepIsThreadCountInvariant) {
  // The fig3g-style Monte-Carlo kernel, batched: per chunk, one
  // fill_normal_fast block + one readback_errors reduction.  The error count
  // must be identical at every thread count (parallel_for_rng forks one
  // stream per chunk; chunking depends only on (n, chunk)).
  device::FeFetParams params;
  params.bits = 3;
  params.sigma_program = 0.08;
  const device::FeFetModel model(params);
  const int mid = params.levels() / 2;
  const double mid_vth = model.level_vth(mid);

  const auto run = [&](std::size_t threads) {
    set_parallel_threads(threads);
    constexpr std::size_t kTrials = 20000;
    constexpr std::size_t kChunk = 1000;
    const std::size_t n_chunks = (kTrials + kChunk - 1) / kChunk;
    std::vector<std::size_t> errors(n_chunks, 0);
    Rng rng(99);
    parallel_for_rng(rng, kTrials, kChunk,
                     [&](Rng& chunk_rng, std::size_t begin, std::size_t end, std::size_t ci) {
                       std::vector<double> vth(end - begin);
                       kernels::fill_normal_fast(chunk_rng, vth.data(), vth.size(), mid_vth,
                                                 params.sigma_program);
                       errors[ci] = model.readback_errors(mid, vth.data(), vth.size());
                     });
    std::size_t total = 0;
    for (std::size_t e : errors) total += e;
    return total;
  };

  const std::size_t at1 = run(1);
  EXPECT_GT(at1, 0u);          // sigma 0.08 against a ~0.15 V half-window: some errors
  EXPECT_LT(at1, 20000u / 2);  // ...but far from random
  EXPECT_EQ(run(2), at1);
  EXPECT_EQ(run(4), at1);
  EXPECT_EQ(run(8), at1);
  set_parallel_threads(0);
}

TEST(Kernels, ReadbackErrorsMatchesScalarReadback) {
  device::FeFetParams params;
  params.bits = 3;
  const device::FeFetModel model(params);
  Rng rng(5);
  for (int level : {0, 3, 7}) {
    std::vector<double> vth(997);
    for (auto& v : vth) v = model.program_vth(level, rng);
    std::size_t ref = 0;
    for (double v : vth) ref += model.readback_level(v) != level ? 1u : 0u;
    EXPECT_EQ(model.readback_errors(level, vth.data(), vth.size()), ref) << "level " << level;
  }
}

TEST(Kernels, DispatchReportsIsa) {
  EXPECT_NE(kernels::isa_name(), nullptr);
  EXPECT_FALSE(std::string(kernels::isa_name()).empty());
}

}  // namespace
}  // namespace xlds
