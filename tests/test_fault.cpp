// Unit tests for the cross-layer fault subsystem: FaultMap generation
// (determinism at any thread count), line-fault folding, graceful-degradation
// policies (spare remapping, yield), array-level injection semantics
// (crossbar and CAMs), the nodal-solve fallback, the nvsim migration, and a
// small end-to-end resilience sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cam/fefet_cam.hpp"
#include "cam/rram_tcam.hpp"
#include "fault/fault_map.hpp"
#include "fault/policy.hpp"
#include "fault/resilience.hpp"
#include "fault/weight_faults.hpp"
#include "nn/network.hpp"
#include "nvsim/explorer.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

namespace xlds {
namespace {

using fault::CellFault;
using fault::FaultMap;
using fault::FaultSpec;
using fault::GracefulPolicies;
using fault::LineFault;

/// Restores the pool to the environment default after each test so thread
/// overrides never leak across test cases.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

// ---- FaultSpec ------------------------------------------------------------

TEST_F(FaultTest, SpecScaledAndMixedAreConsistent) {
  const FaultSpec mix = FaultSpec::mixed(0.1);
  EXPECT_DOUBLE_EQ(mix.cell_fault_rate(), 0.1);
  EXPECT_GT(mix.wordline_open_rate, 0.0);
  EXPECT_GT(mix.senseamp_dead_rate, 0.0);

  const FaultSpec half = mix.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.stuck_on_rate, 0.5 * mix.stuck_on_rate);
  EXPECT_DOUBLE_EQ(half.bitline_short_rate, 0.5 * mix.bitline_short_rate);

  const FaultSpec zero = mix.scaled(0.0);
  EXPECT_DOUBLE_EQ(zero.cell_fault_rate(), 0.0);
  EXPECT_DOUBLE_EQ(zero.senseamp_dead_rate, 0.0);

  // Huge factors clamp to valid probabilities and keep pair splits legal.
  const FaultSpec big = mix.scaled(1e6);
  EXPECT_LE(big.stuck_on_rate + big.stuck_off_rate, 1.0 + 1e-12);
  EXPECT_LE(big.wordline_open_rate + big.wordline_short_rate, 1.0 + 1e-12);
}

// ---- FaultMap generation --------------------------------------------------

TEST_F(FaultTest, GenerateIsThreadCountInvariant) {
  const FaultSpec spec = FaultSpec::mixed(0.05);

  set_parallel_threads(1);
  Rng r1(42);
  const FaultMap a = FaultMap::generate(96, 80, spec, r1);

  set_parallel_threads(8);
  Rng r2(42);
  const FaultMap b = FaultMap::generate(96, 80, spec, r2);

  EXPECT_TRUE(a == b);
  // The parent stream advanced identically too.
  EXPECT_DOUBLE_EQ(r1.uniform(), r2.uniform());
}

TEST_F(FaultTest, GenerateMatchesRatesStatistically) {
  Rng rng(7);
  const FaultMap map = FaultMap::generate(200, 200, FaultSpec::uniform_stuck(0.1), rng);
  std::size_t on = 0, off = 0;
  for (std::size_t r = 0; r < 200; ++r) {
    for (std::size_t c = 0; c < 200; ++c) {
      if (map.cell(r, c) == CellFault::kStuckOn) ++on;
      if (map.cell(r, c) == CellFault::kStuckOff) ++off;
    }
  }
  // 40000 cells at 5 % each: ~2000 per mechanism, sigma ~44.
  EXPECT_NEAR(static_cast<double>(on), 2000.0, 300.0);
  EXPECT_NEAR(static_cast<double>(off), 2000.0, 300.0);
}

TEST_F(FaultTest, EffectiveFoldsLineFaultsIntoCells) {
  FaultMap map(4, 6);
  map.set_row_fault(1, LineFault::kOpen, /*break_at=*/3);
  map.set_row_fault(2, LineFault::kShort);
  map.set_col_fault(5, LineFault::kShort);
  map.set_cell(0, 0, CellFault::kStuckOn);

  EXPECT_EQ(map.effective(0, 0), CellFault::kStuckOn);
  EXPECT_EQ(map.effective(1, 2), CellFault::kNone);   // before the break
  EXPECT_EQ(map.effective(1, 3), CellFault::kOpen);   // at/after the break
  EXPECT_EQ(map.effective(1, 5), CellFault::kOpen);
  for (std::size_t c = 0; c < 6; ++c) EXPECT_EQ(map.effective(2, c), CellFault::kOpen);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_EQ(map.effective(r, 5), CellFault::kOpen);
  // row2 (6) + col5 (4) + row1 beyond break (3) + (0,0), minus the shared
  // crossings (2,5) and (1,5).
  EXPECT_EQ(map.fault_count(), 6u + 4u + 3u + 1u - 2u);
}

// ---- spare remapping ------------------------------------------------------

TEST_F(FaultTest, SpareRemapHidesFaultsWithinBudget) {
  // 4x4 logical + 2 spare rows; faults confined to two logical rows.
  FaultMap physical(6, 4);
  physical.set_cell(0, 1, CellFault::kStuckOn);
  physical.set_cell(2, 3, CellFault::kStuckOff);

  const fault::RemapPlan plan = fault::plan_spare_remap(physical, 4, 4);
  EXPECT_EQ(plan.remapped_rows, 2u);
  EXPECT_EQ(plan.residual_faults, 0u);
  EXPECT_EQ(plan.row_of[0], 4u);
  EXPECT_EQ(plan.row_of[2], 5u);
  EXPECT_EQ(plan.row_of[1], 1u);

  const FaultMap residual = fault::residual_fault_map(physical, plan);
  EXPECT_TRUE(residual.fault_free());
}

TEST_F(FaultTest, RemapIdentityOnCrossbar) {
  // A zero-residual remapped array must behave bit-for-bit like a fault-free
  // one: apply_fault_map consumes no RNG and a clean map pins nothing.
  FaultMap physical(10, 8);
  physical.set_cell(3, 2, CellFault::kStuckOn);
  physical.set_row_sense_dead(5, true);
  const fault::RemapPlan plan = fault::plan_spare_remap(physical, 8, 8);
  const FaultMap residual = fault::residual_fault_map(physical, plan);
  ASSERT_TRUE(residual.fault_free());

  xbar::CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.apply_variation = true;
  Rng ra(11), rb(11);
  xbar::Crossbar clean(cfg, ra);
  xbar::Crossbar remapped(cfg, rb);
  remapped.apply_fault_map(residual);

  MatrixD g(8, 8, 20e-6);
  clean.program_conductances(g);
  remapped.program_conductances(g);
  const std::vector<double> x(8, 1.0);
  const auto ic = clean.column_currents(x);
  const auto ir = remapped.column_currents(x);
  for (std::size_t c = 0; c < 8; ++c) EXPECT_EQ(ic[c], ir[c]) << "col " << c;
}

TEST_F(FaultTest, RemapIdentityOnFefetCam) {
  FaultMap physical(6, 8);
  physical.set_cell(1, 0, CellFault::kOpen);
  const fault::RemapPlan plan = fault::plan_spare_remap(physical, 4, 8);
  const FaultMap residual = fault::residual_fault_map(physical, plan);
  ASSERT_TRUE(residual.fault_free());

  cam::FeFetCamConfig cfg;
  cfg.rows = 4;
  cfg.cols = 8;
  Rng ra(21), rb(21);
  cam::FeFetCamArray clean(cfg, ra);
  cam::FeFetCamArray remapped(cfg, rb);
  remapped.apply_fault_map(residual);

  Rng word_rng(5);
  std::vector<std::vector<int>> words(4, std::vector<int>(8));
  for (auto& w : words)
    for (int& d : w) d = static_cast<int>(word_rng.uniform_u32(8));
  for (std::size_t r = 0; r < 4; ++r) {
    clean.write_word(r, words[r]);
    remapped.write_word(r, words[r]);
  }
  const cam::SearchResult sc = clean.search(words[2]);
  const cam::SearchResult sr = remapped.search(words[2]);
  EXPECT_EQ(sc.best_row, sr.best_row);
  for (std::size_t r = 0; r < 4; ++r)
    EXPECT_EQ(sc.sensed_distance[r], sr.sensed_distance[r]) << "row " << r;
}

// ---- yield ----------------------------------------------------------------

TEST_F(FaultTest, YieldIsPerfectWithoutFaultsAndDegradesWithRate) {
  GracefulPolicies none;
  Rng rng(31);
  const auto clean = fault::estimate_yield(32, 32, FaultSpec{}, none, 0.0, 50, rng);
  EXPECT_DOUBLE_EQ(clean.yield, 1.0);
  EXPECT_DOUBLE_EQ(clean.mean_residual_fraction, 0.0);

  double prev = 1.1;
  for (double rate : {0.0005, 0.005, 0.05}) {
    Rng r(32);
    const auto est =
        fault::estimate_yield(32, 32, FaultSpec::mixed(rate), none, 0.002, 200, r);
    EXPECT_LE(est.yield, prev + 0.05) << "rate " << rate;
    prev = est.yield;
  }
}

TEST_F(FaultTest, SparesImproveYield) {
  const FaultSpec spec = FaultSpec::mixed(0.002);
  GracefulPolicies none;
  GracefulPolicies spares;
  spares.spare_rows = 4;
  spares.spare_cols = 4;
  Rng r1(33), r2(33);
  const auto y_none = fault::estimate_yield(32, 32, spec, none, 0.0005, 300, r1);
  const auto y_sp = fault::estimate_yield(32, 32, spec, spares, 0.0005, 300, r2);
  EXPECT_GT(y_sp.yield, y_none.yield);
}

TEST_F(FaultTest, YieldIsThreadCountInvariant) {
  const FaultSpec spec = FaultSpec::mixed(0.01);
  GracefulPolicies pol;
  pol.spare_rows = 2;

  set_parallel_threads(1);
  Rng r1(34);
  const auto a = fault::estimate_yield(24, 24, spec, pol, 0.01, 100, r1);
  set_parallel_threads(8);
  Rng r2(34);
  const auto b = fault::estimate_yield(24, 24, spec, pol, 0.01, 100, r2);
  EXPECT_EQ(a.yield, b.yield);
  EXPECT_EQ(a.mean_residual_fraction, b.mean_residual_fraction);
}

TEST_F(FaultTest, PolicyCostReflectsSparesAndRequery) {
  GracefulPolicies pol;
  pol.spare_rows = 8;
  pol.spare_cols = 8;
  pol.requery_votes = 3;
  const fault::PolicyCost cost = fault::policy_cost(pol, 64, 64);
  EXPECT_DOUBLE_EQ(cost.area_factor, (72.0 * 72.0) / (64.0 * 64.0));
  EXPECT_DOUBLE_EQ(cost.latency_factor, 3.0);
  EXPECT_DOUBLE_EQ(cost.energy_factor, 3.0);
  EXPECT_THROW(fault::policy_cost(GracefulPolicies{.requery_votes = 2}, 8, 8),
               PreconditionError);
}

// ---- crossbar injection ---------------------------------------------------

TEST_F(FaultTest, CrossbarFaultMapPinsConductances) {
  Rng rng(51);
  xbar::CrossbarConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.ir_drop = xbar::IrDropMode::kNone;
  xbar::Crossbar xb(cfg, rng);
  MatrixD g(4, 4, 30e-6);
  xb.program_conductances(g);

  FaultMap map(4, 4);
  map.set_cell(0, 0, CellFault::kStuckOn);
  map.set_cell(1, 1, CellFault::kStuckOff);
  map.set_cell(2, 2, CellFault::kOpen);
  map.set_col_sense_dead(3, true);
  xb.apply_fault_map(map);

  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), cfg.rram.g_max);
  EXPECT_DOUBLE_EQ(xb.conductance(1, 1), cfg.rram.g_min);
  EXPECT_DOUBLE_EQ(xb.conductance(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(xb.conductance(3, 3), 30e-6);  // untouched
  EXPECT_EQ(xb.stuck_cell_count(), 3u);
  EXPECT_EQ(xb.dead_adc_lanes(), 1u);

  // Stuck cells ignore reprogramming; the dead lane reads zero current.
  xb.program_conductances(g);
  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), cfg.rram.g_max);
  const auto currents = xb.column_currents(std::vector<double>(4, 1.0));
  EXPECT_DOUBLE_EQ(currents[3], 0.0);
  EXPECT_GT(currents[0], 0.0);
}

TEST_F(FaultTest, NodalSolveFallsBackWhenBudgetExhausted) {
  xbar::CrossbarConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.ir_drop = xbar::IrDropMode::kNodal;
  // Starve the iterative path specifically — the direct solver would answer
  // without consuming the iteration budget.
  cfg.nodal_direct = false;
  cfg.nodal_max_iters = 1;
  Rng r1(52);
  xbar::Crossbar starved(cfg, r1);
  MatrixD g(16, 16, 20e-6);
  starved.program_conductances(g);

  const std::vector<double> x(16, 1.0);
  xbar::SolveStatus status;
  const auto i_starved = starved.column_currents(x, status);
  EXPECT_FALSE(status.converged);
  EXPECT_TRUE(status.used_fallback);
  EXPECT_EQ(status.iterations, 1u);
  EXPECT_GT(status.residual, 0.0);

  // The fallback result is exactly the analytic estimate.
  cfg.ir_drop = xbar::IrDropMode::kAnalytic;
  Rng r2(52);
  xbar::Crossbar analytic(cfg, r2);
  analytic.program_conductances(g);
  const auto i_analytic = analytic.column_currents(x);
  for (std::size_t c = 0; c < 16; ++c) EXPECT_EQ(i_starved[c], i_analytic[c]);

  // A sane budget converges and reports it.
  cfg.ir_drop = xbar::IrDropMode::kNodal;
  cfg.nodal_max_iters = 2000;
  Rng r3(52);
  xbar::Crossbar healthy(cfg, r3);
  healthy.program_conductances(g);
  xbar::SolveStatus healthy_status;
  healthy.column_currents(x, healthy_status);
  EXPECT_TRUE(healthy_status.converged);
  EXPECT_FALSE(healthy_status.used_fallback);
}

// ---- CAM injection --------------------------------------------------------

cam::FeFetCamConfig quiet_cam(std::size_t rows, std::size_t cols) {
  cam::FeFetCamConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  return cfg;
}

TEST_F(FaultTest, FefetCamStuckCellsBiasTheDistance) {
  Rng rng(61);
  cam::FeFetCamArray arr(quiet_cam(2, 8), rng);
  const std::vector<int> word0(8, 0);
  const std::vector<int> word1(8, 7);
  arr.write_word(0, word0);
  arr.write_word(1, word1);

  // Baseline: searching word0 matches row 0 at distance 0, row 1 far away.
  const cam::SearchResult base = arr.search(word0);
  EXPECT_EQ(base.best_row, 0u);
  EXPECT_EQ(base.sensed_distance[0], 0.0);
  EXPECT_GT(base.sensed_distance[1], 0.0);

  // Stuck-off row 1 stops conducting entirely: a permanent (false) match.
  FaultMap off_map(2, 8);
  for (std::size_t c = 0; c < 8; ++c) off_map.set_cell(1, c, CellFault::kStuckOff);
  arr.apply_fault_map(off_map);
  EXPECT_EQ(arr.faulty_cell_count(), 8u);
  EXPECT_EQ(arr.search(word0).sensed_distance[1], 0.0);

  // A stuck-on cell pulls the matchline of the true row: distance > 0.
  FaultMap on_map(2, 8);
  on_map.set_cell(0, 4, CellFault::kStuckOn);
  arr.apply_fault_map(on_map);
  EXPECT_GT(arr.search(word0).sensed_distance[0], 0.0);
}

TEST_F(FaultTest, FefetCamDeadSenseAmpNeverWins) {
  Rng rng(62);
  cam::FeFetCamArray arr(quiet_cam(3, 8), rng);
  const std::vector<int> word(8, 3);
  for (std::size_t r = 0; r < 3; ++r) arr.write_word(r, word);

  FaultMap map(3, 8);
  map.set_row_sense_dead(0, true);
  arr.apply_fault_map(map);
  EXPECT_EQ(arr.dead_sense_rows(), 1u);

  const cam::SearchResult res = arr.search(word);
  EXPECT_NE(res.best_row, 0u);
  EXPECT_GT(res.sensed_distance[0], res.sensed_distance[1]);  // full scale
}

TEST_F(FaultTest, RramTcamFaultSemantics) {
  Rng rng(63);
  cam::RramTcamConfig cfg;
  cfg.rows = 2;
  cfg.cols = 8;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  cam::RramTcamArray arr(cfg, rng);
  const std::vector<int> ones(8, 1);
  const std::vector<int> zeros(8, 0);
  arr.write_word(0, ones);
  arr.write_word(1, zeros);

  EXPECT_EQ(arr.search(ones).sensed_distance[1], 8.0);

  // Stuck-off row 1: never conducts, reads as a full match for any query.
  FaultMap map(2, 8);
  for (std::size_t c = 0; c < 8; ++c) map.set_cell(1, c, CellFault::kStuckOff);
  map.set_cell(0, 0, CellFault::kStuckOn);  // permanent mismatch unit on row 0
  arr.apply_fault_map(map);
  const cam::SearchResult res = arr.search(ones);
  EXPECT_EQ(res.sensed_distance[1], 0.0);
  EXPECT_GE(res.sensed_distance[0], 1.0);

  // Writes cannot heal pinned cells.
  arr.write_word(1, ones);
  EXPECT_EQ(arr.search(zeros).sensed_distance[1], 0.0);
}

TEST_F(FaultTest, AgeZeroIsANoOpAndRetentionDriftGrows) {
  Rng rng(64);
  cam::FeFetCamConfig cfg = quiet_cam(2, 8);
  cam::FeFetCamArray arr(cfg, rng);
  const std::vector<int> word{0, 1, 2, 3, 4, 5, 6, 7};
  arr.write_word(0, word);
  arr.write_word(1, word);
  const cam::SearchResult before = arr.search(word);
  arr.age(0.0);
  const cam::SearchResult after = arr.search(word);
  for (std::size_t r = 0; r < 2; ++r)
    EXPECT_EQ(before.sensed_distance[r], after.sensed_distance[r]);

  // FeFET retention walk amplitude grows with log-time.
  device::FeFetModel model(cfg.fefet);
  double short_sq = 0.0, long_sq = 0.0;
  Rng ra(65), rb(65);
  for (int i = 0; i < 400; ++i) {
    const double v0 = 0.5 * (cfg.fefet.vth_low + cfg.fefet.vth_high);
    const double ds = model.retain(v0, 10.0, ra) - v0;
    const double dl = model.retain(v0, 1e8, rb) - v0;
    short_sq += ds * ds;
    long_sq += dl * dl;
  }
  EXPECT_GT(long_sq, short_sq);
  Rng rc(66);
  EXPECT_DOUBLE_EQ(model.retain(1.0, 0.0, rc), 1.0);
}

// ---- weight faults / nvsim migration --------------------------------------

TEST_F(FaultTest, WearoutBerMatchesLegacyFormulaAndCaps) {
  const fault::WearoutBer ber;
  EXPECT_DOUBLE_EQ(ber.at(0.0, 0.0), ber.base_ber);
  const double expect =
      ber.base_ber + ber.base_ber * std::expm1(12.0 * 0.5) + ber.base_ber * std::expm1(12.0 * 0.25);
  EXPECT_DOUBLE_EQ(ber.at(0.5, 0.25), expect);
  EXPECT_DOUBLE_EQ(ber.at(10.0, 10.0), 0.5);

  // The nvsim FaultModel delegates here: identical numbers via the traits.
  nvsim::FaultModel legacy;
  device::DeviceTraits dev{};
  dev.retention_s = 1e8;
  dev.endurance_cycles = 1e6;
  EXPECT_DOUBLE_EQ(legacy.bit_error_rate(dev, 0.5e8, 0.25e6), expect);
}

TEST_F(FaultTest, NvsimInjectionDelegatesToFaultPrimitive) {
  Rng net_rng(71);
  nn::Network a = nn::make_small_cnn(12, 4, 8, net_rng);
  Rng net_rng2(71);
  nn::Network b = nn::make_small_cnn(12, 4, 8, net_rng2);

  Rng fr1(72), fr2(72);
  const std::size_t flips_legacy = nvsim::inject_weight_faults(a, 0.05, fr1);
  const std::size_t flips_fault = fault::flip_quantised_weight_bits(b, 0.05, fr2);
  EXPECT_EQ(flips_legacy, flips_fault);
  EXPECT_GT(flips_fault, 0u);
  std::vector<double> wa, wb;
  a.visit_weights([&](double& w) { wa.push_back(w); });
  b.visit_weights([&](double& w) { wb.push_back(w); });
  EXPECT_EQ(wa, wb);

  Rng fr3(73);
  EXPECT_EQ(fault::flip_quantised_weight_bits(a, 0.0, fr3), 0u);
}

TEST_F(FaultTest, StuckWeightsPinToFullScaleOrZero) {
  Rng net_rng(74);
  nn::Network net = nn::make_small_cnn(12, 4, 8, net_rng);
  double w_max = 0.0;
  net.visit_weights([&](double& w) { w_max = std::max(w_max, std::abs(w)); });

  Rng rng(75);
  const fault::WeightFaultCounts counts = fault::pin_stuck_weights(net, 0.05, 0.05, rng);
  EXPECT_GT(counts.stuck_on, 0u);
  EXPECT_GT(counts.stuck_off, 0u);
  std::size_t at_full = 0, at_zero = 0;
  net.visit_weights([&](double& w) {
    if (w == 0.0) ++at_zero;
    if (std::abs(w) == w_max) ++at_full;
  });
  EXPECT_GE(at_zero, counts.stuck_off);
  EXPECT_GE(at_full, counts.stuck_on);
}

// ---- resilience sweep -----------------------------------------------------

fault::ResilienceConfig small_sweep_config() {
  fault::ResilienceConfig cfg;
  cfg.fault_rates = {0.0, 0.08, 0.3};
  cfg.time_points_s = {0.0, 1.0e6};
  cfg.seeds = 2;
  cfg.base_seed = 99;
  cfg.hdc.data.n_classes = 4;
  cfg.hdc.data.dim = 16;
  cfg.hdc.data.train_per_class = 12;
  cfg.hdc.data.test_per_class = 6;
  cfg.hdc.model.hv_dim = 128;
  cfg.hdc.subarray.cols = 64;
  cfg.hdc.max_test_samples = 24;
  cfg.mann.embedding = 16;
  cfg.mann.signature_bits = 24;
  cfg.mann.episodes = 1;
  cfg.mann.n_way = 3;
  cfg.mann.k_shot = 1;
  cfg.mann.queries_per_class = 2;
  cfg.mann.pretrain_classes = 4;
  cfg.mann.pretrain_per_class = 8;
  cfg.mann.pretrain_epochs = 8;
  cfg.yield_trials = 50;
  return cfg;
}

TEST_F(FaultTest, ResilienceSweepDegradesWithFaultRateAndIsDeterministic) {
  fault::clear_resilience_caches();
  const fault::ResilienceConfig cfg = small_sweep_config();
  const std::size_t n_times = cfg.time_points_s.size();

  set_parallel_threads(8);
  const fault::ResilienceReport report = fault::ResilienceEvaluator(cfg).run();
  ASSERT_EQ(report.points.size(), cfg.fault_rates.size() * n_times);
  ASSERT_EQ(report.yield.size(), cfg.fault_rates.size());

  // Accuracy at each time point is non-increasing in fault rate on average
  // (small slack for sampling noise on successive rates; the ends must
  // separate decisively).
  for (std::size_t ti = 0; ti < n_times; ++ti) {
    for (std::size_t ri = 1; ri < cfg.fault_rates.size(); ++ri) {
      const auto& lo = report.at(ri - 1, ti, n_times);
      const auto& hi = report.at(ri, ti, n_times);
      EXPECT_LE(hi.hdc_accuracy, lo.hdc_accuracy + 0.15) << "rate step " << ri;
      EXPECT_LE(hi.mann_accuracy, lo.mann_accuracy + 0.25) << "rate step " << ri;
    }
    const auto& first = report.at(0, ti, n_times);
    const auto& last = report.at(cfg.fault_rates.size() - 1, ti, n_times);
    EXPECT_GT(first.hdc_accuracy, last.hdc_accuracy);
    EXPECT_GE(first.mann_accuracy, last.mann_accuracy);
  }

  // Fault-free points are healthy; heavily faulted arrays have residuals.
  EXPECT_GT(report.at(0, 0, n_times).hdc_accuracy, 0.7);
  EXPECT_DOUBLE_EQ(report.at(0, 0, n_times).residual_fraction, 0.0);
  EXPECT_GT(report.at(2, 0, n_times).residual_fraction, 0.0);

  // Yield degrades along the same axis.
  EXPECT_DOUBLE_EQ(report.yield.front().yield, 1.0);
  EXPECT_LT(report.yield.back().yield, report.yield.front().yield + 1e-12);

  // Thread-count invariance: the whole report is bit-identical serially.
  set_parallel_threads(1);
  const fault::ResilienceReport serial = fault::ResilienceEvaluator(cfg).run();
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    EXPECT_EQ(report.points[i].hdc_accuracy, serial.points[i].hdc_accuracy) << i;
    EXPECT_EQ(report.points[i].mann_accuracy, serial.points[i].mann_accuracy) << i;
    EXPECT_EQ(report.points[i].residual_fraction, serial.points[i].residual_fraction) << i;
  }
  for (std::size_t i = 0; i < report.yield.size(); ++i)
    EXPECT_EQ(report.yield[i].yield, serial.yield[i].yield) << i;

  // The second run served every seed context from the memo cache.
  const fault::ResilienceCacheStats stats = fault::resilience_cache_stats();
  EXPECT_EQ(stats.lookups, 2u * 2u * cfg.seeds);
  EXPECT_EQ(stats.hits, 2u * cfg.seeds);
}

TEST_F(FaultTest, ResiliencePoliciesCarryTheirCost) {
  fault::ResilienceConfig cfg = small_sweep_config();
  cfg.fault_rates = {0.0};
  cfg.time_points_s = {0.0};
  cfg.seeds = 1;
  cfg.policies.spare_rows = 4;
  cfg.policies.spare_cols = 4;
  cfg.policies.requery_votes = 3;
  const fault::ResilienceReport report = fault::ResilienceEvaluator(cfg).run();
  EXPECT_GT(report.cost.area_factor, 1.0);
  EXPECT_DOUBLE_EQ(report.cost.latency_factor, 3.0);
}

}  // namespace
}  // namespace xlds
