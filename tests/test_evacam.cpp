// Unit tests for the Eva-CAM analytical model, including the Fig. 5
// validation band (projections within ~25 % of the published tool values).
#include <gtest/gtest.h>

#include <cmath>

#include "evacam/evacam.hpp"
#include "evacam/presets.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace xlds::evacam {
namespace {

CamDesignSpec base_spec() {
  CamDesignSpec s;
  s.device = device::DeviceKind::kRram;
  s.cell = CellType::k2T2R;
  s.tech = "40nm";
  s.words = 1024;
  s.bits = 128;
  s.subarray_rows = 256;
  s.subarray_cols = 128;
  return s;
}

TEST(EvaCam, AllFomsPositive) {
  const CamFom f = EvaCam(base_spec()).evaluate();
  EXPECT_GT(f.area_m2, 0.0);
  EXPECT_GT(f.search_latency, 0.0);
  EXPECT_GT(f.search_energy, 0.0);
  EXPECT_GT(f.write_latency, 0.0);
  EXPECT_GT(f.write_energy, 0.0);
  EXPECT_GT(f.leakage_power, 0.0);
  EXPECT_GE(f.mismatch_limit, 1u);
  EXPECT_GE(f.max_ml_columns, 64u);
}

TEST(EvaCam, AreaAndEnergyScaleWithCapacity) {
  CamDesignSpec small = base_spec();
  CamDesignSpec big = base_spec();
  big.words *= 4;
  const CamFom fs = EvaCam(small).evaluate();
  const CamFom fb = EvaCam(big).evaluate();
  EXPECT_NEAR(fb.area_m2 / fs.area_m2, 4.0, 0.5);
  EXPECT_GT(fb.search_energy, 3.0 * fs.search_energy);
}

TEST(EvaCam, MatCountCeils) {
  CamDesignSpec s = base_spec();
  s.words = 300;  // 300*128 cells / (256*128 per mat) -> 2 mats
  EXPECT_EQ(EvaCam(s).mat_count(), 2u);
}

TEST(EvaCam, ThreeTerminalCellsRejectTwoTerminalDevices) {
  CamDesignSpec s = base_spec();
  s.cell = CellType::k2FeFET;
  EXPECT_THROW(EvaCam{s}, PreconditionError);
  s.device = device::DeviceKind::kFeFet;
  EXPECT_NO_THROW(EvaCam{s});
}

TEST(EvaCam, ResistiveCellsRejectFeFets) {
  CamDesignSpec s = base_spec();
  s.device = device::DeviceKind::kFeFet;
  EXPECT_THROW(EvaCam{s}, PreconditionError);
}

TEST(EvaCam, MramMismatchLimitWorstOfTheThree) {
  // Sec. VI: "relatively small on/off resistance ratios of NVMs can limit
  // the SM of the MaLi" — MRAM's ~2.5x ratio must bound the matchline width
  // harder than RRAM's ~100x or FeFET's ~1e5.
  CamDesignSpec rram = base_spec();
  CamDesignSpec mram = base_spec();
  mram.device = device::DeviceKind::kMram;
  mram.cell = CellType::k4T2R;
  CamDesignSpec fefet = base_spec();
  fefet.device = device::DeviceKind::kFeFet;
  fefet.cell = CellType::k2FeFET;
  const CamFom fr = EvaCam(rram).evaluate();
  const CamFom fm = EvaCam(mram).evaluate();
  const CamFom ff = EvaCam(fefet).evaluate();
  EXPECT_LT(fm.max_ml_columns, fr.max_ml_columns);
  EXPECT_LE(fm.mismatch_limit, fr.mismatch_limit);
  EXPECT_GE(ff.max_ml_columns, fr.max_ml_columns / 2);
}

TEST(EvaCam, BestMatchCostsMoreThanExact) {
  CamDesignSpec ex = base_spec();
  CamDesignSpec be = base_spec();
  be.match = cam::MatchType::kBest;
  const CamFom fe = EvaCam(ex).evaluate();
  const CamFom fb = EvaCam(be).evaluate();
  EXPECT_GT(fb.search_latency, fe.search_latency);
  EXPECT_GT(fb.search_energy, fe.search_energy);
}

TEST(EvaCam, WiderMatchlinesRaiseEnergyAndShrinkLimit) {
  CamDesignSpec narrow = base_spec();
  narrow.subarray_cols = 64;
  narrow.bits = 64;
  CamDesignSpec wide = base_spec();
  wide.subarray_cols = 512;
  wide.bits = 512;
  const CamFom fn = EvaCam(narrow).evaluate();
  const CamFom fw = EvaCam(wide).evaluate();
  EXPECT_GT(fw.search_energy, fn.search_energy);
  EXPECT_LE(fw.mismatch_limit, fn.mismatch_limit + 1);
}

TEST(EvaCam, DefaultCellAreasOrdered) {
  EXPECT_LT(EvaCam::default_cell_area_f2(CellType::k2FeFET),
            EvaCam::default_cell_area_f2(CellType::k2T2R));
  EXPECT_LT(EvaCam::default_cell_area_f2(CellType::k2T2R),
            EvaCam::default_cell_area_f2(CellType::k16T));
}

// ---- multi-bit (MCAM) support -------------------------------------------------

CamDesignSpec fefet_spec(int bits_per_cell) {
  CamDesignSpec s = base_spec();
  s.device = device::DeviceKind::kFeFet;
  s.cell = CellType::k2FeFET;
  s.bits_per_cell = bits_per_cell;
  return s;
}

TEST(EvaCamMcam, CellsPerWordShrinkWithPrecision) {
  EXPECT_EQ(EvaCam(fefet_spec(1)).cells_per_word(), 128u);
  EXPECT_EQ(EvaCam(fefet_spec(2)).cells_per_word(), 64u);
  EXPECT_EQ(EvaCam(fefet_spec(3)).cells_per_word(), 43u);  // ceil(128/3)
}

TEST(EvaCamMcam, DensityUpSensingDown) {
  const CamFom tcam = EvaCam(fefet_spec(1)).evaluate();
  const CamFom mcam = EvaCam(fefet_spec(3)).evaluate();
  // Fewer cells -> fewer mats -> smaller array and cheaper word writes...
  EXPECT_LT(mcam.area_m2, tcam.area_m2);
  EXPECT_LT(mcam.write_energy, tcam.write_energy);
  // ...but the one-step mismatch conductance shrinks, so the sensing limits
  // tighten (the Fig. 3B window-vs-levels trade).
  EXPECT_LT(EvaCam(fefet_spec(3)).mismatch_conductance(),
            EvaCam(fefet_spec(1)).mismatch_conductance());
  EXPECT_LE(mcam.max_ml_columns, tcam.max_ml_columns);
}

TEST(EvaCamMcam, UnsupportedPrecisionThrows) {
  EXPECT_THROW(EvaCam{fefet_spec(4)}, PreconditionError);  // FeFET caps at 3
  CamDesignSpec mram = base_spec();
  mram.device = device::DeviceKind::kMram;
  mram.cell = CellType::k4T2R;
  mram.bits_per_cell = 2;
  EXPECT_THROW(EvaCam{mram}, PreconditionError);
  CamDesignSpec rram2 = base_spec();
  rram2.bits_per_cell = 2;  // 2T2R two-bit encoding is allowed
  EXPECT_NO_THROW(EvaCam{rram2});
  rram2.bits_per_cell = 3;
  EXPECT_THROW(EvaCam{rram2}, PreconditionError);
}

// ---- variation-aware sizing (the Sec.-VI extension) --------------------------

TEST(EvaCamVariation, ZeroSigmaMatchesNominal) {
  CamDesignSpec s = base_spec();
  s.device_sigma_rel = 0.0;
  const CamFom f = EvaCam(s).evaluate();
  EXPECT_EQ(f.mismatch_limit_with_variation, f.mismatch_limit);
  EXPECT_EQ(f.max_ml_columns_with_variation, f.max_ml_columns);
}

TEST(EvaCamVariation, VariationShrinksLimits) {
  CamDesignSpec s = base_spec();
  s.device_sigma_rel = 0.15;
  const CamFom f = EvaCam(s).evaluate();
  EXPECT_LE(f.mismatch_limit_with_variation, f.mismatch_limit);
  EXPECT_LE(f.max_ml_columns_with_variation, f.max_ml_columns);
  EXPECT_GE(f.max_ml_columns_with_variation, 1u);
}

TEST(EvaCamVariation, MonotoneInSigma) {
  CamDesignSpec s = base_spec();
  std::size_t prev_cols = 1u << 20;
  for (double sigma : {0.02, 0.08, 0.15, 0.30}) {
    s.device_sigma_rel = sigma;
    const CamFom f = EvaCam(s).evaluate();
    EXPECT_LE(f.max_ml_columns_with_variation, prev_cols) << "sigma " << sigma;
    prev_cols = f.max_ml_columns_with_variation;
  }
}

TEST(EvaCamVariation, HigherConfidenceIsStricter) {
  CamDesignSpec relaxed = base_spec();
  relaxed.device_sigma_rel = 0.12;
  relaxed.sigma_confidence = 2.0;
  CamDesignSpec strict = relaxed;
  strict.sigma_confidence = 5.0;
  EXPECT_LE(EvaCam(strict).evaluate().max_ml_columns_with_variation,
            EvaCam(relaxed).evaluate().max_ml_columns_with_variation);
}

// ---- trait overrides (Fig. 6 hook) --------------------------------------------

TEST(EvaCamOverride, BetterOnOffRatioWidensTheMatchline) {
  CamDesignSpec mram = base_spec();
  mram.device = device::DeviceKind::kMram;
  mram.cell = CellType::k4T2R;
  const std::size_t nominal_cols = EvaCam(mram).evaluate().max_ml_columns;

  device::DeviceTraits improved = device::traits(device::DeviceKind::kMram);
  improved.off_resistance *= 5.0;  // a high-TMR materials lever
  mram.device_override = improved;
  const std::size_t improved_cols = EvaCam(mram).evaluate().max_ml_columns;
  EXPECT_GT(improved_cols, nominal_cols);
}

TEST(EvaCamOverride, OverrideChangesWriteEnergy) {
  CamDesignSpec s = base_spec();
  const double nominal = EvaCam(s).evaluate().write_energy;
  device::DeviceTraits cheap = device::traits(device::DeviceKind::kRram);
  cheap.write_energy *= 0.1;
  s.device_override = cheap;
  EXPECT_LT(EvaCam(s).evaluate().write_energy, nominal);
}

// ---- Fig. 5 validation ------------------------------------------------------

TEST(Fig5Validation, PresetsExist) {
  EXPECT_EQ(fig5_chips().size(), 3u);
  EXPECT_NO_THROW(preset_spec("rram-2t2r-40nm"));
  EXPECT_NO_THROW(preset_spec("pcm-2t2r-90nm"));
  EXPECT_NO_THROW(preset_spec("mram-4t2r-90nm"));
  EXPECT_NO_THROW(preset_spec("fefet-2t-28nm"));
  EXPECT_THROW(preset_spec("sram-xyz"), PreconditionError);
}

// Our model must land within the validation band of the published Eva-CAM
// projections (the tool itself claims +-20 % against silicon; we hold our
// reimplementation to +-35 % of the published numbers, which keeps every
// chip's ordering and decade intact).
class Fig5Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fig5Sweep, ProjectionWithinBand) {
  const ValidationChip& chip = fig5_chips()[GetParam()];
  const CamFom fom = EvaCam(chip.spec).evaluate();
  constexpr double kBand = 0.35;
  if (chip.area_um2.paper_evacam) {
    const double area = to_um2(fom.area_m2);
    EXPECT_NEAR(area, *chip.area_um2.paper_evacam, kBand * *chip.area_um2.paper_evacam)
        << chip.name << " area";
  }
  if (chip.search_latency_ns.paper_evacam) {
    const double lat = to_ns(fom.search_latency);
    EXPECT_NEAR(lat, *chip.search_latency_ns.paper_evacam,
                kBand * *chip.search_latency_ns.paper_evacam)
        << chip.name << " latency";
  }
  if (chip.search_energy_pj.paper_evacam) {
    const double en = to_pj(fom.search_energy);
    EXPECT_NEAR(en, *chip.search_energy_pj.paper_evacam,
                kBand * *chip.search_energy_pj.paper_evacam)
        << chip.name << " energy";
  }
}

INSTANTIATE_TEST_SUITE_P(Chips, Fig5Sweep, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace xlds::evacam
