// Unit tests for the NN substrate: layer numerics (including numerical
// gradient checks), the network container and the builders.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/layer.hpp"
#include "nn/network.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace xlds::nn {
namespace {

// ---- DenseLayer ---------------------------------------------------------

TEST(Dense, ForwardKnownValues) {
  Rng rng(1);
  DenseLayer d(2, 2, rng);
  auto& w = d.mutable_weights();
  w(0, 0) = 1.0;
  w(0, 1) = 2.0;
  w(1, 0) = 3.0;
  w(1, 1) = 4.0;
  const auto y = d.forward({1.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 7.0);   // 1*1 + 2*3
  EXPECT_DOUBLE_EQ(y[1], 10.0);  // 1*2 + 2*4
}

TEST(Dense, CountsMacsAndParams) {
  Rng rng(2);
  DenseLayer d(10, 5, rng);
  EXPECT_EQ(d.counts().macs, 50u);
  EXPECT_EQ(d.counts().params, 55u);
}

// Numerical gradient check: perturb each weight, compare loss delta with the
// analytic gradient accumulated by backward().
TEST(Dense, GradientMatchesNumerical) {
  Rng rng(3);
  DenseLayer d(3, 2, rng);
  const std::vector<double> x = {0.5, -0.2, 0.8};
  const std::vector<double> grad_out = {1.0, -0.5};  // dL/dy

  auto loss = [&](DenseLayer& layer) {
    const auto y = layer.forward(x);
    return grad_out[0] * y[0] + grad_out[1] * y[1];  // linear functional
  };

  d.forward(x);
  const auto grad_in = d.backward(grad_out);

  // Input gradient check.
  constexpr double kEps = 1e-6;
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<double> xp = x, xm = x;
    xp[i] += kEps;
    xm[i] -= kEps;
    const auto yp = d.forward(xp);
    const auto ym = d.forward(xm);
    const double num = ((grad_out[0] * yp[0] + grad_out[1] * yp[1]) -
                        (grad_out[0] * ym[0] + grad_out[1] * ym[1])) /
                       (2 * kEps);
    EXPECT_NEAR(grad_in[i], num, 1e-6);
  }

  // Weight gradient check: apply update with lr=1, momentum=0; the weight
  // moves by -grad, so loss must decrease to first order.
  const double before = loss(d);
  d.forward(x);
  d.backward(grad_out);
  d.update(1e-3, 0.0, 0.0);
  const double after = loss(d);
  EXPECT_LT(after, before);
}

// ---- ReluLayer --------------------------------------------------------

TEST(Relu, ForwardAndBackwardMask) {
  ReluLayer r(4);
  const auto y = r.forward({-1.0, 2.0, 0.0, 3.0});
  EXPECT_EQ(y, (std::vector<double>{0.0, 2.0, 0.0, 3.0}));
  const auto g = r.backward({1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(g, (std::vector<double>{0.0, 1.0, 0.0, 1.0}));
}

// ---- Conv2dLayer --------------------------------------------------------

TEST(Conv, OutputShapeAndIdentityKernel) {
  Rng rng(4);
  Conv2dLayer conv(1, 4, 4, 1, 3, rng);
  EXPECT_EQ(conv.out_h(), 2u);
  EXPECT_EQ(conv.out_w(), 2u);
  EXPECT_EQ(conv.output_size(), 4u);
  EXPECT_EQ(conv.counts().macs, 2u * 2u * 9u);
}

TEST(Conv, GradientDecreasesLoss) {
  Rng rng(5);
  Conv2dLayer conv(1, 6, 6, 2, 3, rng);
  Rng data(6);
  std::vector<double> x(36);
  for (double& v : x) v = data.uniform();
  std::vector<double> grad_out(conv.output_size(), 1.0);

  auto loss = [&] {
    double s = 0.0;
    for (double v : conv.forward(x)) s += v;
    return s;
  };
  const double before = loss();
  conv.forward(x);
  conv.backward(grad_out);
  conv.update(1e-3, 0.0, 0.0);
  EXPECT_LT(loss(), before);
}

TEST(Conv, InputGradientMatchesNumerical) {
  Rng rng(7);
  Conv2dLayer conv(1, 5, 5, 1, 3, rng);
  Rng data(8);
  std::vector<double> x(25);
  for (double& v : x) v = data.uniform();
  conv.forward(x);
  std::vector<double> grad_out(conv.output_size(), 1.0);
  const auto grad_in = conv.backward(grad_out);

  constexpr double kEps = 1e-6;
  for (std::size_t i : {0u, 7u, 12u, 24u}) {
    std::vector<double> xp = x, xm = x;
    xp[i] += kEps;
    xm[i] -= kEps;
    double sp = 0.0, sm = 0.0;
    for (double v : conv.forward(xp)) sp += v;
    for (double v : conv.forward(xm)) sm += v;
    EXPECT_NEAR(grad_in[i], (sp - sm) / (2 * kEps), 1e-5) << "pixel " << i;
  }
}

// ---- MaxPoolLayer -------------------------------------------------------

TEST(MaxPool, SelectsMaximaAndRoutesGradient) {
  MaxPoolLayer pool(1, 4, 4);
  std::vector<double> x(16, 0.0);
  x[5] = 3.0;   // (1,1) in the top-left window? window (0..1, 0..1) has idx 0,1,4,5
  x[10] = 7.0;  // (2,2) in the bottom-right-ish window
  const auto y = pool.forward(x);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[3], 7.0);
  const auto g = pool.backward({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(g[5], 1.0);
  EXPECT_DOUBLE_EQ(g[10], 4.0);
}

// ---- Network -----------------------------------------------------------

TEST(Network, SoftmaxNormalises) {
  const auto p = softmax({1.0, 2.0, 3.0});
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(Network, TrainsLinearlySeparableProblem) {
  Rng rng(9);
  Network net = make_mlp(2, {16}, 2, rng);
  // Class 0: x0 > x1; class 1 otherwise.
  std::vector<std::vector<double>> xs;
  std::vector<std::size_t> ys;
  Rng data(10);
  for (int i = 0; i < 200; ++i) {
    const double a = data.uniform(), b = data.uniform();
    xs.push_back({a, b});
    ys.push_back(a > b ? 0 : 1);
  }
  for (int e = 0; e < 30; ++e) net.train_epoch(xs, ys, 0.05, rng);
  EXPECT_GT(net.accuracy(xs, ys), 0.95);
}

TEST(Network, TrainStepReducesLossOnAverage) {
  Rng rng(11);
  Network net = make_mlp(4, {8}, 3, rng);
  const std::vector<double> x = {0.1, 0.9, 0.4, 0.2};
  double first = 0.0, last = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double loss = net.train_step(x, 1, 0.05);
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

TEST(Network, ForwardUntilSkipsHead) {
  Rng rng(12);
  Network net = make_mlp(4, {8}, 3, rng);
  // Dropping the final Dense leaves the 8-wide hidden activation.
  EXPECT_EQ(net.forward_until({0.1, 0.2, 0.3, 0.4}, 1).size(), 8u);
  EXPECT_EQ(net.forward({0.1, 0.2, 0.3, 0.4}).size(), 3u);
}

TEST(Network, SmallCnnShapesAndTrains) {
  Rng rng(13);
  Network net = make_small_cnn(16, 4, 32, rng);
  std::vector<double> img(256, 0.5);
  EXPECT_EQ(net.forward(img).size(), 4u);
  EXPECT_EQ(net.forward_until(img, 1).size(), 32u);
  EXPECT_GT(net.total_counts().macs, 10000u);
  EXPECT_NO_THROW(net.train_step(img, 2, 0.01));
}

TEST(Network, EmptyNetworkThrows) {
  Network net;
  EXPECT_THROW(net.forward({1.0}), PreconditionError);
}

TEST(Network, WeightDecayShrinksWeights) {
  Rng rng(14);
  DenseLayer d(4, 4, rng);
  const std::vector<double> zero_grad(4, 0.0);
  double norm_before = 0.0;
  for (double w : d.weights().data()) norm_before += w * w;
  // No data gradient, only decay: weights must shrink toward zero.
  d.forward({0.0, 0.0, 0.0, 0.0});
  d.backward(zero_grad);
  d.update(0.1, 0.0, 0.5);
  double norm_after = 0.0;
  for (double w : d.weights().data()) norm_after += w * w;
  EXPECT_LT(norm_after, norm_before);
}

}  // namespace
}  // namespace xlds::nn
