// Cross-module integration tests: the end-to-end flows the paper's case
// studies run, at reduced scale.
#include <gtest/gtest.h>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"
#include "core/pareto.hpp"
#include "evacam/evacam.hpp"
#include "evacam/presets.hpp"
#include "hdc/cam_inference.hpp"
#include "hdc/model.hpp"
#include "mann/mann.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"
#include "workload/dataset.hpp"
#include "workload/fewshot.hpp"

namespace xlds {
namespace {

// Sec. III end-to-end at small scale: train HDC, map the search stage onto
// the FeFET MCAM with variation at the paper's measured sigma, confirm
// iso-accuracy, and confirm the CAM pipeline is faster than the GPU model.
TEST(Integration, HdcCaseStudyFlow) {
  workload::GaussianClustersSpec spec;
  spec.n_classes = 8;
  spec.dim = 64;
  spec.train_per_class = 20;
  spec.test_per_class = 12;
  spec.separation = 5.5;
  const auto ds = workload::make_gaussian_clusters(spec, 21);

  Rng rng(22);
  hdc::HdcConfig cfg;
  cfg.hv_dim = 512;
  cfg.element_bits = 3;
  hdc::HdcModel model(cfg, ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  const double sw_acc = model.accuracy(ds.test_x, ds.test_y);
  ASSERT_GT(sw_acc, 0.8);

  hdc::CamInferenceConfig hw;
  hw.subarray.fefet.bits = 3;
  hw.subarray.fefet.sigma_program = 0.094;
  hw.subarray.cols = 64;
  hw.subarray.apply_variation = true;
  hw.aggregation = cam::Aggregation::kSumSensed;
  hdc::HdcCamInference cam_inf(model, hw, rng);
  const double hw_acc = cam_inf.accuracy(ds.test_x, ds.test_y);
  EXPECT_NEAR(hw_acc, sw_acc, 0.08);  // iso-accuracy at the measured sigma

  const cam::SearchCost cost = cam_inf.search_cost();
  EXPECT_LT(cost.latency, 1e-6);  // far below any GPU round trip
}

// Sec. IV end-to-end at small scale: CNN features, crossbar TLSH, TCAM
// search, compared against the software-cosine reference.
TEST(Integration, MannCaseStudyFlow) {
  workload::FewShotSpec fs;
  fs.image_side = 16;
  fs.n_classes = 40;
  workload::FewShotGenerator gen(fs, 23);

  auto make_config = [](mann::Backend backend) {
    mann::MannConfig cfg;
    cfg.image_side = 16;
    cfg.embedding = 32;
    cfg.signature_bits = 64;
    cfg.backend = backend;
    cfg.hash_xbar.rows = 32;
    cfg.hash_xbar.cols = 128;
    cfg.hash_xbar.read_noise_rel = 0.0;
    cfg.am.cols = 64;
    return cfg;
  };

  Rng rng_sw(24), rng_hw(24);
  mann::MannPipeline software(make_config(mann::Backend::kSoftwareCosine), rng_sw);
  mann::MannPipeline hardware(make_config(mann::Backend::kRramTlsh), rng_hw);
  software.pretrain(gen, 8, 12, 12, 0.001);
  {
    workload::FewShotGenerator gen2(fs, 23);
    hardware.pretrain(gen2, 8, 12, 12, 0.001);
  }

  workload::FewShotGenerator eval_sw(fs, 25), eval_hw(fs, 25);
  const double acc_sw = software.evaluate(eval_sw, 8, 5, 1, 3);
  const double acc_hw = hardware.evaluate(eval_hw, 8, 5, 1, 3);
  EXPECT_GT(acc_sw, 0.4);
  EXPECT_GT(acc_hw, 0.35);
  EXPECT_GT(acc_hw, acc_sw - 0.25);  // hashing costs some accuracy, not all
}

// Sec. VI flow: the analytical tool and the functional CAM must rank designs
// the same way (bigger arrays cost more energy; MRAM narrower than RRAM).
TEST(Integration, AnalyticalAndFunctionalCamAgreeOnOrdering) {
  evacam::CamDesignSpec small = evacam::preset_spec("rram-2t2r-40nm");
  small.words = 256;
  evacam::CamDesignSpec large = small;
  large.words = 4096;
  const auto f_small = evacam::EvaCam(small).evaluate();
  const auto f_large = evacam::EvaCam(large).evaluate();
  EXPECT_GT(f_large.search_energy, f_small.search_energy);
  EXPECT_GT(f_large.area_m2, f_small.area_m2);

  Rng rng(26);
  cam::RramTcamConfig small_arr;
  small_arr.rows = 16;
  small_arr.cols = 64;
  cam::RramTcamConfig large_arr = small_arr;
  large_arr.rows = 128;
  cam::RramTcamArray a(small_arr, rng), b(large_arr, rng);
  EXPECT_GT(b.search_cost().energy, a.search_cost().energy);
}

// Sec. VII top-down flow: profile -> enumerate -> evaluate -> triage, with
// the Sec.-III winner surviving to the Pareto front.
TEST(Integration, TriageFlowSurfacesTechnologyEnabledDesigns) {
  core::Evaluator ev;
  const core::AppProfile profile = core::profile_for("isolet-like");
  std::vector<core::ScoredPoint> scored;
  for (const auto& ep : core::enumerate_design_space("isolet-like")) {
    core::ScoredPoint sp;
    sp.point = ep.point;
    sp.fom = ev.evaluate(ep.point, profile);
    scored.push_back(sp);
  }
  const auto front = core::pareto_front(scored);
  ASSERT_FALSE(front.empty());
  bool in_memory_on_front = false;
  for (std::size_t idx : front) {
    const auto arch = scored[idx].point.arch;
    if (arch == core::ArchKind::kCamXbarHybrid || arch == core::ArchKind::kCamAccelerator)
      in_memory_on_front = true;
  }
  EXPECT_TRUE(in_memory_on_front);
}

// Sec. V flow feeding Sec. VI numbers: accelerator tile cost from the xbar
// module plugged into the system simulator.
TEST(Integration, SystemSimulationUsesCrossbarCosts) {
  Rng rng(27);
  xbar::CrossbarConfig tile;
  tile.rows = 64;
  tile.cols = 64;
  tile.apply_variation = false;
  tile.read_noise_rel = 0.0;
  const xbar::MvmCost tile_cost = xbar::Crossbar(tile, rng).mvm_cost();

  sim::AcceleratorConfig accel;
  accel.present = true;
  accel.tile_cost = tile_cost;
  const double speedup = sim::accelerator_speedup(
      sim::CoreConfig{}, sim::CacheConfig{.name = "L1"},
      sim::CacheConfig{.name = "L2", .size_bytes = 512 * 1024, .ways = 8, .hit_latency_s = 6e-9},
      sim::DramConfig{}, accel, sim::make_cnn_program(sim::cifar_cnn(6)));
  EXPECT_GT(speedup, 2.0);
}

}  // namespace
}  // namespace xlds
