// Unit tests for the device models: technology nodes, trait presets, FeFET
// multi-level behaviour, the statistical RRAM model, and the two-state
// resistive models.
#include <gtest/gtest.h>

#include <cmath>

#include "device/device.hpp"
#include "device/fefet.hpp"
#include "device/materials.hpp"
#include "device/resistive.hpp"
#include "device/rram.hpp"
#include "device/technology.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace xlds::device {
namespace {

// ---- technology ---------------------------------------------------------

TEST(TechNode, LookupKnownNodes) {
  EXPECT_DOUBLE_EQ(tech_node("40nm").feature_m, 40e-9);
  EXPECT_DOUBLE_EQ(tech_node("90nm").feature_m, 90e-9);
  EXPECT_EQ(tech_node("16nm").name, "16nm");
}

TEST(TechNode, UnknownNodeThrows) { EXPECT_THROW(tech_node("3nm"), PreconditionError); }

TEST(TechNode, ScalingIsMonotonic) {
  const auto& nodes = all_tech_nodes();
  ASSERT_GE(nodes.size(), 3u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].feature_m, nodes[i - 1].feature_m) << nodes[i].name;
    EXPECT_LE(nodes[i].vdd, nodes[i - 1].vdd) << nodes[i].name;
    EXPECT_GT(nodes[i].wire_r_per_m, nodes[i - 1].wire_r_per_m) << nodes[i].name;
  }
}

TEST(TechNode, TransistorModels) {
  const TechNode& n = tech_node("40nm");
  // Wider transistors: lower resistance, higher capacitance.
  EXPECT_GT(n.tx_on_resistance(0.1), n.tx_on_resistance(0.2));
  EXPECT_LT(n.tx_gate_cap(0.1), n.tx_gate_cap(0.2));
  EXPECT_LT(n.tx_drain_cap(0.1), n.tx_gate_cap(0.1));
  EXPECT_THROW(n.tx_on_resistance(0.0), PreconditionError);
}

// ---- traits -------------------------------------------------------------

TEST(DeviceTraits, AllKindsHavePresets) {
  for (DeviceKind k : all_device_kinds()) {
    const DeviceTraits& t = traits(k);
    EXPECT_EQ(t.kind, k);
    EXPECT_GT(t.cell_area_f2, 0.0) << to_string(k);
    EXPECT_GT(t.on_resistance, 0.0);
    EXPECT_GT(t.off_resistance, t.on_resistance);
    EXPECT_GE(t.max_bits_per_cell, 1);
  }
}

TEST(DeviceTraits, NarrativeOrderings) {
  // The paper's qualitative claims about the technologies.
  EXPECT_FALSE(traits(DeviceKind::kSram).nonvolatile);
  EXPECT_TRUE(traits(DeviceKind::kFeFet).nonvolatile);
  // Flash: high write voltage, low endurance (Sec. II-B1).
  EXPECT_GT(traits(DeviceKind::kFlash).write_voltage, traits(DeviceKind::kRram).write_voltage);
  EXPECT_LT(traits(DeviceKind::kFlash).endurance_cycles,
            traits(DeviceKind::kRram).endurance_cycles);
  // MRAM: small on/off ratio (limits matchline sense margin, Sec. VI).
  EXPECT_LT(traits(DeviceKind::kMram).on_off_ratio(), 5.0);
  EXPECT_GT(traits(DeviceKind::kFeFet).on_off_ratio(), 1e3);
  // FeFETs demonstrated 3-bit cells (Fig. 3D).
  EXPECT_GE(traits(DeviceKind::kFeFet).max_bits_per_cell, 3);
  // Dense crosspoint RRAM.
  EXPECT_LT(traits(DeviceKind::kRram).cell_area_f2, traits(DeviceKind::kSram).cell_area_f2);
}

TEST(VariationSpec, TotalCombinesInQuadrature) {
  VariationSpec v{0.03, 0.04};
  EXPECT_NEAR(v.total_sigma(), 0.05, 1e-12);
}

// ---- FeFET ---------------------------------------------------------------

class FeFetTest : public ::testing::Test {
 protected:
  FeFetParams params_;  // defaults: 3-bit, 94 mV sigma
};

TEST_F(FeFetTest, LevelsEvenlySpaced) {
  FeFetModel m(params_);
  const double w = params_.level_window();
  for (int l = 0; l + 1 < params_.levels(); ++l)
    EXPECT_NEAR(m.level_vth(l + 1) - m.level_vth(l), w, 1e-12);
  EXPECT_DOUBLE_EQ(m.level_vth(0), params_.vth_low);
  EXPECT_DOUBLE_EQ(m.level_vth(params_.levels() - 1), params_.vth_high);
}

TEST_F(FeFetTest, LevelOutOfRangeThrows) {
  FeFetModel m(params_);
  EXPECT_THROW(m.level_vth(-1), PreconditionError);
  EXPECT_THROW(m.level_vth(8), PreconditionError);
}

TEST_F(FeFetTest, ProgrammingVariationMatchesSigma) {
  FeFetModel m(params_);
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(m.program_vth(3, rng));
  EXPECT_NEAR(s.mean(), m.level_vth(3), 0.003);
  EXPECT_NEAR(s.stddev(), params_.sigma_program, 0.003);
}

TEST_F(FeFetTest, ReadbackRecoversNominalLevels) {
  FeFetModel m(params_);
  for (int l = 0; l < params_.levels(); ++l) EXPECT_EQ(m.readback_level(m.level_vth(l)), l);
}

TEST_F(FeFetTest, ReadbackClampsOutOfWindow) {
  FeFetModel m(params_);
  EXPECT_EQ(m.readback_level(params_.vth_low - 1.0), 0);
  EXPECT_EQ(m.readback_level(params_.vth_high + 1.0), params_.levels() - 1);
}

TEST_F(FeFetTest, CurrentMonotonicInOverdrive) {
  FeFetModel m(params_);
  double prev = 0.0;
  for (double vgs = 0.0; vgs <= 2.5; vgs += 0.05) {
    const double i = m.drain_current(vgs, 1.0);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST_F(FeFetTest, SquareLawAboveThreshold) {
  FeFetModel m(params_);
  const double i1 = m.drain_current(1.2, 1.0);  // 0.2 V overdrive
  const double i2 = m.drain_current(1.4, 1.0);  // 0.4 V overdrive
  EXPECT_NEAR(i2 / i1, 4.0, 0.01);
}

TEST_F(FeFetTest, OffStateFloorsAtLeakage) {
  FeFetModel m(params_);
  EXPECT_DOUBLE_EQ(m.drain_current(0.0, 1.8), params_.ioff);
}

TEST_F(FeFetTest, SearchVoltageKeepsMatchingCellOff) {
  FeFetModel m(params_);
  for (int l = 0; l < params_.levels(); ++l) {
    // Searching the stored level: the device must remain subthreshold.
    EXPECT_LT(m.search_voltage(l), m.level_vth(l));
  }
}

TEST_F(FeFetTest, LevelErrorGrowsWithSigmaAndLevels) {
  FeFetParams lo = params_;
  lo.sigma_program = 0.05;
  FeFetParams hi = params_;
  hi.sigma_program = 0.15;
  EXPECT_LT(FeFetModel(lo).level_error_probability(3),
            FeFetModel(hi).level_error_probability(3));

  FeFetParams b2 = params_;
  b2.bits = 2;
  // Fewer levels -> wider windows -> lower error at the same sigma.
  EXPECT_LT(FeFetModel(b2).level_error_probability(1),
            FeFetModel(params_).level_error_probability(1));
}

TEST_F(FeFetTest, EdgeLevelsErrOnlyInward) {
  FeFetModel m(params_);
  EXPECT_NEAR(m.level_error_probability(0), m.level_error_probability(3) / 2.0, 1e-12);
}

TEST_F(FeFetTest, ZeroSigmaZeroError) {
  FeFetParams p = params_;
  p.sigma_program = 0.0;
  EXPECT_EQ(FeFetModel(p).level_error_probability(2), 0.0);
}

TEST_F(FeFetTest, MonteCarloAgreesWithAnalyticOverlap) {
  FeFetModel m(params_);
  Rng rng(2);
  int errors = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i)
    if (m.readback_level(m.program_vth(4, rng)) != 4) ++errors;
  EXPECT_NEAR(static_cast<double>(errors) / kTrials, m.level_error_probability(4), 0.01);
}

// ---- RRAM ------------------------------------------------------------------

class RramTest : public ::testing::Test {
 protected:
  RramParams params_;
};

TEST_F(RramTest, LevelConductancesSpanRange) {
  RramModel m(params_);
  EXPECT_DOUBLE_EQ(m.level_conductance(0), params_.g_min);
  EXPECT_DOUBLE_EQ(m.level_conductance(params_.levels() - 1), params_.g_max);
  for (int l = 0; l + 1 < params_.levels(); ++l)
    EXPECT_LT(m.level_conductance(l), m.level_conductance(l + 1));
}

TEST_F(RramTest, SigmaHasMidRangeBump) {
  RramModel m(params_);
  const double at_peak = m.sigma_at(params_.g_peak_centre);
  const double at_min = m.sigma_at(params_.g_min);
  const double at_max = m.sigma_at(params_.g_max);
  EXPECT_GT(at_peak, 2.0 * at_min);
  EXPECT_GT(at_peak, at_max);
}

TEST_F(RramTest, ProgramOnceClampsToRange) {
  RramModel m(params_);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double g = m.program_once(params_.g_max, rng);
    EXPECT_GE(g, params_.g_min);
    EXPECT_LE(g, params_.g_max);
  }
}

TEST_F(RramTest, ProgramVerifyTightensDistribution) {
  RramModel m(params_);
  Rng rng(4);
  const double target = params_.g_peak_centre;  // worst-case sigma region
  RunningStats open_loop, closed_loop;
  for (int i = 0; i < 3000; ++i) {
    open_loop.add(std::abs(m.program_once(target, rng) - target));
    closed_loop.add(std::abs(m.program_verify(target, rng) - target));
  }
  EXPECT_LT(closed_loop.mean(), open_loop.mean());
  // The verify loop should land most cells inside the tolerance.
  EXPECT_LT(closed_loop.mean(), params_.verify_tolerance);
}

TEST_F(RramTest, RelaxationGrowsWithTime) {
  RramModel m(params_);
  Rng rng(5);
  RunningStats short_t, long_t;
  const double g0 = 30e-6;
  for (int i = 0; i < 4000; ++i) {
    short_t.add(std::abs(m.relax(g0, 0.1, rng) - g0));
    long_t.add(std::abs(m.relax(g0, 100.0, rng) - g0));
  }
  EXPECT_LT(short_t.mean(), long_t.mean());
}

TEST_F(RramTest, RelaxationZeroTimeIsIdentity) {
  RramModel m(params_);
  Rng rng(6);
  EXPECT_DOUBLE_EQ(m.relax(10e-6, 0.0, rng), 10e-6);
}

TEST_F(RramTest, HrsSamplesSkewLow) {
  RramModel m(params_);
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    const double g = m.sample_hrs(rng);
    EXPECT_GE(g, params_.g_min);
    EXPECT_LE(g, params_.g_max);
    s.add(g);
  }
  // HRS population lives near the bottom of the conductance range.
  EXPECT_LT(s.mean(), 0.25 * params_.g_max);
}

TEST_F(RramTest, VariationAwareMappingAvoidsBump) {
  RramModel m(params_);
  const int levels = 4;
  double naive_sigma = 0.0, aware_sigma = 0.0;
  for (int l = 0; l < levels; ++l) {
    const double g_naive =
        params_.g_min + (params_.g_max - params_.g_min) * l / double(levels - 1);
    naive_sigma += m.sigma_at(g_naive);
    aware_sigma += m.sigma_at(m.variation_aware_level_conductance(l, levels));
  }
  EXPECT_LE(aware_sigma, naive_sigma);
}

TEST_F(RramTest, VariationAwareMappingIsMonotone) {
  RramModel m(params_);
  for (int levels : {2, 4, 8}) {
    double prev = -1.0;
    for (int l = 0; l < levels; ++l) {
      const double g = m.variation_aware_level_conductance(l, levels);
      EXPECT_GT(g, prev);
      prev = g;
    }
  }
}

// ---- resistive -----------------------------------------------------------

TEST(Resistive, PresetsFollowTraits) {
  for (DeviceKind k : {DeviceKind::kRram, DeviceKind::kPcm, DeviceKind::kMram}) {
    const ResistiveParams p = resistive_params_for(k);
    EXPECT_DOUBLE_EQ(p.r_on, traits(k).on_resistance);
    EXPECT_DOUBLE_EQ(p.r_off, traits(k).off_resistance);
  }
}

TEST(Resistive, SamplesArePositiveAndCentred) {
  ResistiveModel m(resistive_params_for(DeviceKind::kPcm));
  Rng rng(8);
  RunningStats on, off;
  for (int i = 0; i < 5000; ++i) {
    const double r_on = m.sample_resistance(true, rng);
    const double r_off = m.sample_resistance(false, rng);
    EXPECT_GT(r_on, 0.0);
    EXPECT_GT(r_off, 0.0);
    on.add(r_on);
    off.add(r_off);
  }
  EXPECT_NEAR(on.mean(), m.nominal_resistance(true), 0.05 * m.nominal_resistance(true));
  EXPECT_GT(off.mean(), on.mean());
}

TEST(Resistive, PcmDriftRaisesHrsFasterThanLrs) {
  ResistiveModel pcm(resistive_params_for(DeviceKind::kPcm));
  const double r_on = pcm.nominal_resistance(true);
  const double r_off = pcm.nominal_resistance(false);
  constexpr double kDay = 86400.0;
  const double on_drift = pcm.drifted_resistance(r_on, true, kDay) / r_on;
  const double off_drift = pcm.drifted_resistance(r_off, false, kDay) / r_off;
  EXPECT_GT(off_drift, 2.0);        // amorphous state drifts hard (t^0.1)
  EXPECT_LT(on_drift, 1.1);         // crystalline state barely moves
  EXPECT_GT(off_drift, on_drift);
  // Monotone in time.
  EXPECT_GT(pcm.drifted_resistance(r_off, false, 10 * kDay),
            pcm.drifted_resistance(r_off, false, kDay));
}

TEST(Resistive, NonPcmDevicesDoNotDrift) {
  ResistiveModel rram(resistive_params_for(DeviceKind::kRram));
  EXPECT_DOUBLE_EQ(rram.drifted_resistance(1e5, false, 1e7), 1e5);
  ResistiveModel mram(resistive_params_for(DeviceKind::kMram));
  EXPECT_DOUBLE_EQ(mram.drifted_resistance(5e3, true, 1e7), 5e3);
}

TEST(Resistive, MramSpreadTighterThanPcm) {
  const auto mram = resistive_params_for(DeviceKind::kMram);
  const auto pcm = resistive_params_for(DeviceKind::kPcm);
  EXPECT_LT(mram.sigma_off_rel, pcm.sigma_off_rel);
}

// ---- materials levers (Fig. 6) -----------------------------------------------

TEST(Materials, ApplyLeverScalesTraits) {
  const DeviceTraits base = traits(DeviceKind::kMram);
  MaterialsLever lever;
  lever.name = "test";
  lever.write_energy_x = 0.5;
  lever.on_off_ratio_x = 2.0;
  lever.endurance_x = 10.0;
  const DeviceTraits t = apply_lever(base, lever);
  EXPECT_DOUBLE_EQ(t.write_energy, 0.5 * base.write_energy);
  EXPECT_DOUBLE_EQ(t.off_resistance, 2.0 * base.off_resistance);
  EXPECT_DOUBLE_EQ(t.endurance_cycles, 10.0 * base.endurance_cycles);
  EXPECT_DOUBLE_EQ(t.on_resistance, base.on_resistance);  // untouched
  EXPECT_NEAR(t.on_off_ratio(), 2.0 * base.on_off_ratio(), 1e-9);
}

TEST(Materials, InvalidLeverRejected) {
  MaterialsLever lever;
  lever.write_energy_x = 0.0;
  EXPECT_THROW(apply_lever(traits(DeviceKind::kMram), lever), PreconditionError);
}

TEST(Materials, PresetsPopulated) {
  EXPECT_GE(spin_device_levers().size(), 3u);
  EXPECT_GE(ferroelectric_levers().size(), 2u);
  for (const auto& l : spin_device_levers()) {
    EXPECT_FALSE(l.name.empty());
    EXPECT_FALSE(l.mechanism.empty());
  }
}

TEST(Materials, SotLeverCutsWriteCost) {
  const DeviceTraits base = traits(DeviceKind::kMram);
  const auto& sot = spin_device_levers().front();  // "SOT switching"
  const DeviceTraits t = apply_lever(base, sot);
  EXPECT_LT(t.write_energy, base.write_energy);
  EXPECT_LT(t.write_latency, base.write_latency);
  EXPECT_GT(t.endurance_cycles, base.endurance_cycles);
}

}  // namespace
}  // namespace xlds::device
