// Unit tests for the associative-memory simulators: FeFET MCAM, RRAM TCAM,
// analog CAM and subarray partitioning.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cam/acam.hpp"
#include "cam/fefet_cam.hpp"
#include "cam/partitioned.hpp"
#include "cam/processor.hpp"
#include "cam/rram_tcam.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace xlds::cam {
namespace {

FeFetCamConfig ideal_config(std::size_t rows, std::size_t cols, int bits) {
  FeFetCamConfig cfg;
  cfg.fefet.bits = bits;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  cfg.sense_levels = 256;
  return cfg;
}

// ---- FeFetCamArray ---------------------------------------------------------

TEST(FeFetCam, ExactMatchFindsStoredWord) {
  Rng rng(1);
  FeFetCamArray cam(ideal_config(4, 8, 3), rng);
  cam.write_word(0, {0, 1, 2, 3, 4, 5, 6, 7});
  cam.write_word(1, {7, 6, 5, 4, 3, 2, 1, 0});
  cam.write_word(2, {1, 1, 1, 1, 1, 1, 1, 1});
  cam.write_word(3, {0, 0, 0, 0, 0, 0, 0, 7});
  const auto hits = cam.exact_match({7, 6, 5, 4, 3, 2, 1, 0});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(FeFetCam, BestMatchTracksIdealDistance) {
  Rng rng(2);
  FeFetCamArray cam(ideal_config(8, 16, 2), rng);
  Rng data(3);
  std::vector<std::vector<int>> words(8, std::vector<int>(16));
  for (auto& w : words)
    for (int& d : w) d = static_cast<int>(data.uniform_u32(4));
  for (std::size_t r = 0; r < words.size(); ++r) cam.write_word(r, words[r]);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> q(16);
    for (int& d : q) d = static_cast<int>(data.uniform_u32(4));
    const SearchResult res = cam.search(q);
    // The sensed winner must be within sensing resolution of the ideal
    // winner's distance (the sensing saturates, so exact identity can break
    // for far queries; near queries must agree).
    std::size_t ideal_best = 0;
    double best_d = 1e18;
    for (std::size_t r = 0; r < words.size(); ++r) {
      const double d = cam.ideal_distance(r, q);
      if (d < best_d) {
        best_d = d;
        ideal_best = r;
      }
    }
    if (best_d < static_cast<double>(cam.mismatch_limit()) / 2.0) {
      EXPECT_EQ(res.best_row, ideal_best) << "trial " << trial;
    }
  }
}

TEST(FeFetCam, SensedDistanceMonotoneInIdealDistance) {
  Rng rng(4);
  FeFetCamArray cam(ideal_config(3, 8, 3), rng);
  cam.write_word(0, {4, 4, 4, 4, 4, 4, 4, 4});
  cam.write_word(1, {4, 4, 4, 4, 4, 4, 4, 5});  // distance 1
  cam.write_word(2, {4, 4, 4, 4, 4, 4, 5, 5});  // distance 2
  const SearchResult res = cam.search({4, 4, 4, 4, 4, 4, 4, 4});
  EXPECT_LT(res.sensed_distance[0], res.sensed_distance[1]);
  EXPECT_LT(res.sensed_distance[1], res.sensed_distance[2]);
  EXPECT_EQ(res.best_row, 0u);
}

TEST(FeFetCam, QuadraticCellTransfer) {
  // Fig. 3D: a one-step mismatch conducts ~4x less than a two-step mismatch.
  Rng rng(5);
  FeFetCamArray cam(ideal_config(1, 1, 3), rng);
  cam.write_word(0, {4});
  const SearchResult d1 = cam.search({5});
  const SearchResult d2 = cam.search({6});
  EXPECT_GT(d2.sensed_distance[0], 2.5 * std::max(d1.sensed_distance[0], 1e-9));
}

TEST(FeFetCam, TransferCurveIsValleyAtStoredLevel) {
  Rng rng(6);
  const FeFetCamConfig cfg = ideal_config(1, 1, 3);
  FeFetCamArray cam(cfg, rng);
  const auto& fefet = cam.device_model();
  const int stored = 3;
  const double v_store = fefet.search_voltage(stored);
  const double g_at_store = cam.cell_transfer_conductance(v_store, stored);
  const double g_below = cam.cell_transfer_conductance(v_store - 0.4, stored);
  const double g_above = cam.cell_transfer_conductance(v_store + 0.4, stored);
  EXPECT_GT(g_below, 10.0 * g_at_store);
  EXPECT_GT(g_above, 10.0 * g_at_store);
}

TEST(FeFetCam, DontCareCellsNeverDischarge) {
  Rng rng(7);
  FeFetCamArray cam(ideal_config(2, 4, 2), rng);
  cam.write_word(0, {kDontCare, kDontCare, kDontCare, kDontCare});
  cam.write_word(1, {0, 0, 0, 0});
  const SearchResult res = cam.search({3, 3, 3, 3});
  EXPECT_NEAR(res.sensed_distance[0], 0.0, 1e-9);
  EXPECT_GT(res.sensed_distance[1], 0.0);
}

TEST(FeFetCam, ThresholdMatchReturnsCloseRows) {
  Rng rng(8);
  FeFetCamArray cam(ideal_config(3, 8, 3), rng);
  cam.write_word(0, {4, 4, 4, 4, 4, 4, 4, 4});
  cam.write_word(1, {4, 4, 4, 4, 4, 4, 4, 5});
  cam.write_word(2, {0, 0, 0, 0, 0, 0, 0, 0});
  const auto rows = cam.threshold_match({4, 4, 4, 4, 4, 4, 4, 4}, 2.0);
  EXPECT_EQ(rows, (std::vector<std::size_t>{0, 1}));
}

TEST(FeFetCam, ReadbackMatchesStoredWithoutVariation) {
  Rng rng(9);
  FeFetCamArray cam(ideal_config(1, 8, 3), rng);
  cam.write_word(0, {0, 1, 2, 3, 4, 5, 6, 7});
  for (std::size_t c = 0; c < 8; ++c) EXPECT_EQ(cam.readback_digit(0, c), static_cast<int>(c));
}

TEST(FeFetCam, VariationCausesLevelErrorsAtHighSigma) {
  FeFetCamConfig cfg = ideal_config(16, 64, 3);
  cfg.apply_variation = true;
  cfg.fefet.sigma_program = 0.25;  // far beyond the 94 mV the paper measured
  Rng rng(10);
  FeFetCamArray cam(cfg, rng);
  std::vector<int> word(64, 3);
  int errors = 0;
  for (std::size_t r = 0; r < 16; ++r) {
    cam.write_word(r, word);
    for (std::size_t c = 0; c < 64; ++c)
      if (cam.readback_digit(r, c) != 3) ++errors;
  }
  EXPECT_GT(errors, 0);
}

TEST(FeFetCam, SearchCostScalesWithGeometry) {
  Rng rng(11);
  FeFetCamArray small(ideal_config(16, 32, 2), rng);
  FeFetCamArray big(ideal_config(128, 128, 2), rng);
  EXPECT_GT(big.search_cost().energy, small.search_cost().energy);
  EXPECT_GT(big.search_cost().latency, 0.0);
}

TEST(FeFetCam, MismatchLimitPositiveAndBounded) {
  Rng rng(12);
  FeFetCamArray cam(ideal_config(8, 64, 3), rng);
  EXPECT_GE(cam.mismatch_limit(), 1u);
}

TEST(FeFetCam, RejectsBadInput) {
  Rng rng(13);
  FeFetCamArray cam(ideal_config(2, 4, 2), rng);
  EXPECT_THROW(cam.write_word(5, {0, 0, 0, 0}), PreconditionError);
  EXPECT_THROW(cam.write_word(0, {0, 0, 0}), PreconditionError);
  EXPECT_THROW(cam.write_word(0, {0, 0, 0, 9}), PreconditionError);
  cam.write_word(0, {0, 0, 0, 0});
  cam.write_word(1, {0, 0, 0, 0});
  EXPECT_THROW(cam.search({0, 0}), PreconditionError);
  EXPECT_THROW(cam.search({0, 0, 0, 4}), PreconditionError);
}

// Property sweep over cell precisions: without variation/noise the sensed
// winner equals the ideal winner for near queries.
class FeFetCamBits : public ::testing::TestWithParam<int> {};

TEST_P(FeFetCamBits, IdealSearchCorrectAcrossPrecisions) {
  const int bits = GetParam();
  const int levels = 1 << bits;
  Rng rng(14);
  FeFetCamArray cam(ideal_config(6, 12, bits), rng);
  Rng data(15);
  std::vector<std::vector<int>> words(6, std::vector<int>(12));
  for (auto& w : words)
    for (int& d : w) d = static_cast<int>(data.uniform_u32(levels));
  for (std::size_t r = 0; r < words.size(); ++r) cam.write_word(r, words[r]);
  for (std::size_t r = 0; r < words.size(); ++r) {
    std::vector<int> q = words[r];
    q[0] = std::min(levels - 1, q[0] + 1);  // one-step perturbation
    const SearchResult res = cam.search(q);
    EXPECT_EQ(res.best_row, r) << "bits=" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Precisions, FeFetCamBits, ::testing::Values(1, 2, 3, 4));

// ---- RramTcamArray --------------------------------------------------------

RramTcamConfig ideal_tcam(std::size_t rows, std::size_t cols) {
  RramTcamConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  cfg.sense_levels = 256;
  return cfg;
}

TEST(RramTcam, HammingDistanceExactWithoutNoise) {
  Rng rng(16);
  RramTcamArray tcam(ideal_tcam(4, 16), rng);
  const std::vector<int> base(16, 1);
  tcam.write_word(0, base);
  std::vector<int> w1 = base;
  w1[3] = 0;
  tcam.write_word(1, w1);
  std::vector<int> w2 = base;
  w2[0] = w2[1] = w2[2] = 0;
  tcam.write_word(2, w2);
  tcam.write_word(3, std::vector<int>(16, 0));
  const SearchResult res = tcam.search(base);
  EXPECT_NEAR(res.sensed_distance[0], 0.0, 0.26);
  EXPECT_NEAR(res.sensed_distance[1], 1.0, 0.26);
  EXPECT_NEAR(res.sensed_distance[2], 3.0, 0.26);
  EXPECT_NEAR(res.sensed_distance[3], 16.0, 0.26);
  EXPECT_EQ(res.best_row, 0u);
}

TEST(RramTcam, DontCareContributesZero) {
  Rng rng(17);
  RramTcamArray tcam(ideal_tcam(2, 8), rng);
  tcam.write_word(0, {1, 1, 1, 1, kDontCare, kDontCare, kDontCare, kDontCare});
  tcam.write_word(1, {1, 1, 1, 1, 0, 0, 0, 0});
  const SearchResult res = tcam.search({1, 1, 1, 1, 1, 1, 1, 1});
  EXPECT_NEAR(res.sensed_distance[0], 0.0, 0.3);
  EXPECT_NEAR(res.sensed_distance[1], 4.0, 0.3);
}

TEST(RramTcam, IdealDistanceCountsMismatches) {
  Rng rng(18);
  RramTcamArray tcam(ideal_tcam(1, 6), rng);
  tcam.write_word(0, {1, 0, kDontCare, 1, 0, 1});
  EXPECT_EQ(tcam.ideal_distance(0, {1, 0, 1, 1, 0, 1}), 0u);
  EXPECT_EQ(tcam.ideal_distance(0, {0, 1, 0, 0, 1, 0}), 5u);
}

TEST(RramTcam, VariationPerturbsSensedDistances) {
  RramTcamConfig cfg = ideal_tcam(8, 64);
  cfg.apply_variation = true;
  cfg.sense_levels = 1024;
  Rng rng(19);
  RramTcamArray tcam(cfg, rng);
  Rng data(20);
  std::vector<int> word(64);
  for (int& b : word) b = data.bernoulli(0.5) ? 1 : 0;
  for (std::size_t r = 0; r < 8; ++r) tcam.write_word(r, word);
  const SearchResult res = tcam.search(word);
  // All rows store the same word; with device variation the sensed values
  // spread around 0 but must stay small.
  for (double d : res.sensed_distance) EXPECT_LT(d, 4.0);
}

TEST(RramTcam, AgingDriftsDistances) {
  RramTcamConfig cfg = ideal_tcam(1, 128);
  cfg.apply_variation = true;
  Rng rng(21);
  RramTcamArray tcam(cfg, rng);
  Rng data(22);
  std::vector<int> word(128);
  for (int& b : word) b = data.bernoulli(0.5) ? 1 : 0;
  tcam.write_word(0, word);
  const double before = tcam.search(word).sensed_distance[0];
  tcam.age(1.0e4);
  const double after = tcam.search(word).sensed_distance[0];
  EXPECT_GE(after, before);  // relaxation can only blur toward mid states
}

TEST(RramTcam, VariationAwareMappingKeepsMarginUsable) {
  // With the high-variation band centred mid-range, the co-optimised mapping
  // must still produce a clean Hamming staircase.
  RramTcamConfig cfg = ideal_tcam(3, 32);
  cfg.variation_aware_mapping = true;
  Rng rng(23);
  RramTcamArray tcam(cfg, rng);
  const std::vector<int> base(32, 1);
  tcam.write_word(0, base);
  std::vector<int> w1 = base;
  w1[0] = 0;
  tcam.write_word(1, w1);
  std::vector<int> w2 = base;
  w2[0] = w2[1] = 0;
  tcam.write_word(2, w2);
  const SearchResult res = tcam.search(base);
  EXPECT_LT(res.sensed_distance[0], res.sensed_distance[1]);
  EXPECT_LT(res.sensed_distance[1], res.sensed_distance[2]);
}

TEST(RramTcam, RejectsBadBits) {
  Rng rng(24);
  RramTcamArray tcam(ideal_tcam(1, 4), rng);
  EXPECT_THROW(tcam.write_word(0, {0, 1, 2, 0}), PreconditionError);
  tcam.write_word(0, {0, 1, 0, 1});
  EXPECT_THROW(tcam.search({0, 1, 3, 1}), PreconditionError);  // not 0/1/X
  EXPECT_NO_THROW(tcam.search({0, 1, kDontCare, 1}));  // masked queries are legal
}

TEST(RramTcam, MaskedQuerySkipsColumns) {
  Rng rng(60);
  RramTcamArray tcam(ideal_tcam(2, 8), rng);
  tcam.write_word(0, {1, 1, 1, 1, 0, 0, 0, 0});
  tcam.write_word(1, {1, 1, 0, 0, 0, 0, 0, 0});
  // Mask the disagreeing columns: both rows exact-match.
  std::vector<int> q = {1, 1, kDontCare, kDontCare, 0, 0, 0, 0};
  EXPECT_EQ(tcam.exact_match(q).size(), 2u);
  // Unmask one disagreeing column: only row 0 matches.
  q[2] = 1;
  const auto rows = tcam.exact_match(q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0u);
  // Fully masked queries are rejected.
  EXPECT_THROW(tcam.search(std::vector<int>(8, kDontCare)), PreconditionError);
}

TEST(RramTcam, WriteCellUpdatesSingleBit) {
  Rng rng(61);
  RramTcamArray tcam(ideal_tcam(1, 4), rng);
  tcam.write_word(0, {0, 0, 0, 0});
  tcam.write_cell(0, 2, 1);
  EXPECT_EQ(tcam.stored_bit(0, 2), 1);
  EXPECT_EQ(tcam.stored_bit(0, 1), 0);
  EXPECT_EQ(tcam.ideal_distance(0, {0, 0, 1, 0}), 0u);
}

// ---- CamProcessor (CAPE-style general-purpose compute) ----------------------

RramTcamConfig processor_config(std::size_t rows, std::size_t cols) {
  RramTcamConfig cfg = ideal_tcam(rows, cols);
  cfg.sense_levels = 256;
  return cfg;
}

TEST(CamProcessor, BitwiseTruthTablesAcrossAllRows) {
  Rng rng(62);
  CamProcessor proc(processor_config(4, 6), rng);
  // Columns: 0 = a, 1 = b, 2 = AND, 3 = OR, 4 = XOR, 5 = NOT a.
  const int a_bits[4] = {0, 0, 1, 1};
  const int b_bits[4] = {0, 1, 0, 1};
  for (std::size_t r = 0; r < 4; ++r)
    proc.load_row(r, {a_bits[r], b_bits[r], 0, 0, 0, 0});

  proc.apply(2, {0, 1}, {0, 0, 0, 1});  // AND
  proc.apply(3, {0, 1}, {0, 1, 1, 1});  // OR
  proc.apply(4, {0, 1}, {0, 1, 1, 0});  // XOR
  proc.apply(5, {0}, {1, 0});           // NOT

  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(proc.bit(r, 2), a_bits[r] & b_bits[r]) << "AND row " << r;
    EXPECT_EQ(proc.bit(r, 3), a_bits[r] | b_bits[r]) << "OR row " << r;
    EXPECT_EQ(proc.bit(r, 4), a_bits[r] ^ b_bits[r]) << "XOR row " << r;
    EXPECT_EQ(proc.bit(r, 5), 1 - a_bits[r]) << "NOT row " << r;
  }
}

TEST(CamProcessor, RowParallelAdderCorrectOnRandomOperands) {
  constexpr std::size_t kRows = 16;
  constexpr std::size_t kWidth = 4;
  // Layout: a[0..3], b[4..7], out[8..11], carry=12, scratch=13.
  Rng rng(63);
  CamProcessor proc(processor_config(kRows, 14), rng);
  Rng data(64);
  std::vector<unsigned> a_vals(kRows), b_vals(kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    a_vals[r] = data.uniform_u32(16);
    b_vals[r] = data.uniform_u32(16);
    std::vector<int> row(14, 0);
    for (std::size_t i = 0; i < kWidth; ++i) {
      row[i] = static_cast<int>((a_vals[r] >> i) & 1u);
      row[4 + i] = static_cast<int>((b_vals[r] >> i) & 1u);
    }
    proc.load_row(r, row);
  }
  proc.add_words({0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, 12, 13);
  for (std::size_t r = 0; r < kRows; ++r) {
    unsigned sum = 0;
    for (std::size_t i = 0; i < kWidth; ++i)
      sum |= static_cast<unsigned>(proc.bit(r, 8 + i)) << i;
    const unsigned carry = static_cast<unsigned>(proc.bit(r, 12));
    EXPECT_EQ(sum | (carry << kWidth), a_vals[r] + b_vals[r]) << "row " << r;
  }
}

TEST(CamProcessor, CostAccountingCountsPasses) {
  Rng rng(65);
  CamProcessor proc(processor_config(4, 4), rng);
  proc.load_row(0, {1, 1, 0, 0});
  proc.reset_cost();
  proc.apply(2, {0, 1}, {0, 0, 0, 1});  // AND: 1 clear + 1 minterm
  EXPECT_EQ(proc.cost().searches, 1u);
  EXPECT_EQ(proc.cost().writes, 2u);  // clear + set pass
  EXPECT_GT(proc.cost().total.latency, 0.0);
  EXPECT_GT(proc.cost().total.energy, 0.0);
}

TEST(CamProcessor, RejectsBadArguments) {
  Rng rng(66);
  CamProcessor proc(processor_config(2, 4), rng);
  EXPECT_THROW(proc.apply(0, {0}, {1, 0}), PreconditionError);        // dst == src
  EXPECT_THROW(proc.apply(1, {0}, {1, 0, 1}), PreconditionError);     // bad table size
  EXPECT_THROW(proc.load_row(0, {0, 1, 2, 0}), PreconditionError);    // non-binary data
}

// ---- FeFetAcamArray -----------------------------------------------------

TEST(Acam, MatchesInsideStoredRange) {
  AcamConfig cfg;
  cfg.rows = 2;
  cfg.cols = 2;
  cfg.apply_variation = false;
  Rng rng(25);
  FeFetAcamArray acam(cfg, rng);
  acam.write_word(0, {{0.2, 0.4}, {0.6, 0.9}});
  acam.write_word(1, {{0.0, 0.1}, {0.0, 0.1}});
  const auto hits = acam.exact_match({0.3, 0.7});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_TRUE(acam.exact_match({0.5, 0.5}).empty());
}

TEST(Acam, VariationShiftsBounds) {
  AcamConfig cfg;
  cfg.rows = 1;
  cfg.cols = 1;
  cfg.apply_variation = true;
  cfg.fefet.sigma_program = 0.15;
  Rng rng(26);
  FeFetAcamArray acam(cfg, rng);
  acam.write_word(0, {{0.4, 0.6}});
  const AnalogRange pr = acam.programmed_range(0, 0);
  EXPECT_NE(pr.lo, 0.4);  // variation applied
  EXPECT_LE(pr.lo, pr.hi);
  EXPECT_GE(pr.lo, 0.0);
  EXPECT_LE(pr.hi, 1.0);
}

TEST(Acam, RejectsInvalidRanges) {
  AcamConfig cfg;
  cfg.rows = 1;
  cfg.cols = 1;
  Rng rng(27);
  FeFetAcamArray acam(cfg, rng);
  EXPECT_THROW(acam.write_word(0, {{0.7, 0.3}}), PreconditionError);
  EXPECT_THROW(acam.write_word(0, {{-0.1, 0.5}}), PreconditionError);
}

// ---- PartitionedCam --------------------------------------------------------

PartitionedCamConfig partition_config(std::size_t rows, std::size_t seg_cols,
                                      std::size_t total_width, Aggregation agg) {
  PartitionedCamConfig cfg;
  cfg.subarray = ideal_config(rows, seg_cols, 2);
  cfg.total_width = total_width;
  cfg.aggregation = agg;
  return cfg;
}

TEST(PartitionedCam, SegmentCountCeils) {
  Rng rng(28);
  PartitionedCam cam(partition_config(4, 32, 100, Aggregation::kVote), rng);
  EXPECT_EQ(cam.segments(), 4u);  // ceil(100/32)
}

TEST(PartitionedCam, SingleSegmentAgreesWithIdeal) {
  Rng rng(29);
  PartitionedCam cam(partition_config(6, 64, 64, Aggregation::kSumSensed), rng);
  Rng data(30);
  std::vector<std::vector<int>> words(6, std::vector<int>(64));
  for (auto& w : words)
    for (int& d : w) d = static_cast<int>(data.uniform_u32(4));
  for (std::size_t r = 0; r < 6; ++r) cam.write_word(r, words[r]);
  for (std::size_t r = 0; r < 6; ++r) {
    std::vector<int> q = words[r];
    q[5] = (q[5] + 1) % 4;
    EXPECT_EQ(cam.search(q).best_row, cam.ideal_best_match(q));
  }
}

TEST(PartitionedCam, VoteAggregationCanDisagreeWithIdeal) {
  // The Fig. 3F-i construction: row 0 is globally closest but loses most
  // segments 'narrowly'; row 1 wins more segment votes.
  Rng rng(31);
  PartitionedCam cam(partition_config(2, 4, 12, Aggregation::kVote), rng);
  //          |  seg 0    |  seg 1    |  seg 2    |
  // Row 0 differs from the query by 2 in one segment only -> wins 1 segment.
  // Row 1 differs by 1 in every segment -> wins 2 segments by a hair... but
  // globally row 1 distance = 3 > row 0 distance = 4? Construct numerically:
  // query:   0 0 0 0 | 0 0 0 0 | 0 0 0 0
  // row 0:   0 0 0 0 | 0 0 0 0 | 2 2 0 0   (SE distance 8, wins segs 0,1)
  // row 1:   1 0 0 0 | 1 0 0 0 | 0 0 0 0   (SE distance 2, wins seg 2)
  cam.write_word(0, {0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 0, 0});
  cam.write_word(1, {1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0});
  const std::vector<int> q(12, 0);
  EXPECT_EQ(cam.ideal_best_match(q), 1u);
  EXPECT_EQ(cam.search(q).best_row, 0u);  // vote aggregation picks the wrong row
}

TEST(PartitionedCam, SumSensedFixesTheVoteFailure) {
  Rng rng(32);
  PartitionedCam cam(partition_config(2, 4, 12, Aggregation::kSumSensed), rng);
  cam.write_word(0, {0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 0, 0});
  cam.write_word(1, {1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_EQ(cam.search(std::vector<int>(12, 0)).best_row, 1u);
}

TEST(PartitionedCam, PaddedTailIsNeutral) {
  Rng rng(33);
  PartitionedCam cam(partition_config(2, 8, 10, Aggregation::kSumSensed), rng);
  cam.write_word(0, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  cam.write_word(1, {3, 3, 3, 3, 3, 3, 3, 3, 3, 3});
  const SearchResult res = cam.search(std::vector<int>(10, 0));
  EXPECT_EQ(res.best_row, 0u);
  EXPECT_NEAR(res.sensed_distance[0], 0.0, 0.5);
}

TEST(PartitionedCam, ParallelSegmentsLatencyIsMax) {
  Rng rng(34);
  PartitionedCam one(partition_config(2, 32, 32, Aggregation::kVote), rng);
  PartitionedCam four(partition_config(2, 32, 128, Aggregation::kVote), rng);
  std::vector<int> w32(32, 1), w128(128, 1);
  one.write_word(0, w32);
  one.write_word(1, w32);
  four.write_word(0, w128);
  four.write_word(1, w128);
  const double lat1 = one.search(w32).cost.latency;
  const double lat4 = four.search(w128).cost.latency;
  const double en1 = one.search(w32).cost.energy;
  const double en4 = four.search(w128).cost.energy;
  EXPECT_NEAR(lat4, lat1, 0.2 * lat1);   // parallel: same beat
  EXPECT_NEAR(en4, 4.0 * en1, 0.2 * en4);  // energy: per segment
}

}  // namespace
}  // namespace xlds::cam
