// Unit tests for the synthetic workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "workload/dataset.hpp"
#include "workload/fewshot.hpp"

namespace xlds::workload {
namespace {

// ---- Gaussian-cluster datasets ---------------------------------------------

TEST(Dataset, DeterministicForSameSeed) {
  const Dataset a = make_named_dataset("isolet-like", 7);
  const Dataset b = make_named_dataset("isolet-like", 7);
  EXPECT_EQ(a.train_x, b.train_x);
  EXPECT_EQ(a.test_y, b.test_y);
}

TEST(Dataset, DifferentSeedsDiffer) {
  const Dataset a = make_named_dataset("isolet-like", 7);
  const Dataset b = make_named_dataset("isolet-like", 8);
  EXPECT_NE(a.train_x, b.train_x);
}

TEST(Dataset, PresetShapesMatchDocs) {
  const Dataset iso = make_named_dataset("isolet-like", 1);
  EXPECT_EQ(iso.n_classes, 26u);
  EXPECT_EQ(iso.dim, 617u);
  EXPECT_EQ(iso.train_x.size(), 26u * 20u);
  EXPECT_EQ(iso.test_x.size(), 26u * 12u);
  const Dataset har = make_named_dataset("ucihar-like", 1);
  EXPECT_EQ(har.n_classes, 6u);
  EXPECT_EQ(har.dim, 561u);
}

TEST(Dataset, FeaturesInUnitRange) {
  const Dataset ds = make_named_dataset("language-like", 2);
  for (const auto& x : ds.train_x)
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
}

TEST(Dataset, UnknownPresetThrows) {
  EXPECT_THROW(make_named_dataset("imagenet", 1), PreconditionError);
}

TEST(Dataset, AllPresetsGenerate) {
  for (const std::string& name : named_dataset_presets())
    EXPECT_NO_THROW(make_named_dataset(name, 3)) << name;
}

// Nearest-centroid accuracy grows with separation — the knob the accuracy
// experiments rely on.
double centroid_accuracy(const Dataset& ds) {
  std::vector<std::vector<double>> centroids(ds.n_classes, std::vector<double>(ds.dim, 0.0));
  std::vector<double> counts(ds.n_classes, 0.0);
  for (std::size_t i = 0; i < ds.train_x.size(); ++i) {
    for (std::size_t d = 0; d < ds.dim; ++d) centroids[ds.train_y[i]][d] += ds.train_x[i][d];
    counts[ds.train_y[i]] += 1.0;
  }
  for (std::size_t c = 0; c < ds.n_classes; ++c)
    for (std::size_t d = 0; d < ds.dim; ++d) centroids[c][d] /= counts[c];
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.test_x.size(); ++i) {
    std::size_t best = 0;
    double best_d = 1e300;
    for (std::size_t c = 0; c < ds.n_classes; ++c) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < ds.dim; ++d) {
        const double delta = ds.test_x[i][d] - centroids[c][d];
        d2 += delta * delta;
      }
      if (d2 < best_d) {
        best_d = d2;
        best = c;
      }
    }
    if (best == ds.test_y[i]) ++correct;
  }
  return static_cast<double>(correct) / ds.test_x.size();
}

class SeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(SeparationSweep, CentroidAccuracyTracksSeparation) {
  GaussianClustersSpec spec;
  spec.n_classes = 8;
  spec.dim = 32;
  spec.train_per_class = 30;
  spec.test_per_class = 20;
  spec.separation = GetParam();
  const double acc = centroid_accuracy(make_gaussian_clusters(spec, 5));
  // Pairwise Bayes error ~ Phi(-separation/2), scaled up by the class count.
  if (GetParam() >= 6.0) {
    EXPECT_GT(acc, 0.95);
  } else if (GetParam() >= 3.0) {
    EXPECT_GT(acc, 0.6);
  } else if (GetParam() <= 0.5) {
    EXPECT_LT(acc, 0.6);
  }
}

INSTANTIATE_TEST_SUITE_P(Separations, SeparationSweep, ::testing::Values(0.25, 0.5, 3.0, 6.0));

// ---- standardiser ------------------------------------------------------------

TEST(Standardiser, ZScoresTrainSplit) {
  const Dataset ds = standardised(make_named_dataset("ucihar-like", 9));
  // Per-dimension train mean ~0 and std ~1 after standardisation.
  const std::size_t dim = ds.dim;
  std::vector<double> mean(dim, 0.0), var(dim, 0.0);
  for (const auto& x : ds.train_x)
    for (std::size_t d = 0; d < dim; ++d) mean[d] += x[d];
  for (double& m : mean) m /= static_cast<double>(ds.train_x.size());
  for (const auto& x : ds.train_x)
    for (std::size_t d = 0; d < dim; ++d) var[d] += (x[d] - mean[d]) * (x[d] - mean[d]);
  for (std::size_t d = 0; d < std::min<std::size_t>(dim, 16); ++d) {
    EXPECT_NEAR(mean[d], 0.0, 1e-9) << d;
    EXPECT_NEAR(std::sqrt(var[d] / ds.train_x.size()), 1.0, 1e-6) << d;
  }
}

TEST(Standardiser, AppliesTrainStatsToTestSplit) {
  const Dataset raw = make_named_dataset("face-like", 10);
  const Dataset std_ds = standardised(raw);
  const Standardiser s = Standardiser::fit(raw.train_x);
  const auto expected = s.apply(raw.test_x[0]);
  for (std::size_t d = 0; d < raw.dim; ++d)
    EXPECT_DOUBLE_EQ(std_ds.test_x[0][d], expected[d]);
}

TEST(Standardiser, WidthMismatchRejected) {
  const Standardiser s = Standardiser::fit({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_THROW(s.apply({1.0}), PreconditionError);
}

// ---- few-shot generator ----------------------------------------------------

TEST(FewShot, EpisodeShapes) {
  FewShotGenerator gen(FewShotSpec{}, 11);
  const Episode ep = gen.sample_episode(5, 3, 4);
  EXPECT_EQ(ep.n_way, 5u);
  EXPECT_EQ(ep.k_shot, 3u);
  EXPECT_EQ(ep.support_x.size(), 15u);
  EXPECT_EQ(ep.query_x.size(), 20u);
  for (std::size_t y : ep.support_y) EXPECT_LT(y, 5u);
  for (std::size_t y : ep.query_y) EXPECT_LT(y, 5u);
  EXPECT_EQ(ep.support_x[0].size(), gen.image_size());
}

TEST(FewShot, PixelsInUnitRange) {
  FewShotGenerator gen(FewShotSpec{}, 12);
  const auto img = gen.sample_image(3);
  for (double p : img) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(FewShot, SameClassCloserThanDifferentClass) {
  FewShotGenerator gen(FewShotSpec{}, 13);
  auto dist = [](const std::vector<double>& a, const std::vector<double>& b) {
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
    return d;
  };
  double same = 0.0, diff = 0.0;
  for (std::size_t cls = 0; cls < 10; ++cls) {
    const auto a = gen.sample_image(cls);
    const auto b = gen.sample_image(cls);
    const auto c = gen.sample_image(cls + 10);
    same += dist(a, b);
    diff += dist(a, c);
  }
  EXPECT_LT(same, diff);
}

TEST(FewShot, FlatSamplingLabels) {
  FewShotGenerator gen(FewShotSpec{}, 14);
  std::vector<std::vector<double>> xs;
  std::vector<std::size_t> ys;
  gen.sample_flat(4, 6, xs, ys);
  EXPECT_EQ(xs.size(), 24u);
  for (std::size_t y : ys) EXPECT_LT(y, 4u);
}

TEST(FewShot, InvalidEpisodeThrows) {
  FewShotGenerator gen(FewShotSpec{}, 15);
  EXPECT_THROW(gen.sample_episode(1, 1, 1), PreconditionError);
  EXPECT_THROW(gen.sample_episode(1000, 1, 1), PreconditionError);
}

}  // namespace
}  // namespace xlds::workload
