// Closed-loop serving simulator: SLO primitives, recalibration policies,
// determinism (same-seed repeatability and thread-count invariance), and the
// acceptance behaviour — the accuracy watchdog holds the floor that the
// no-recalibration baseline violates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "serve/loop.hpp"
#include "serve/model.hpp"
#include "serve/policy.hpp"
#include "serve/slo.hpp"
#include "util/parallel.hpp"

namespace xlds {
namespace {

// ---------------------------------------------------------------- SLO units

TEST(SlidingAccuracy, TracksWindowedFraction) {
  serve::SlidingAccuracy acc(4);
  EXPECT_DOUBLE_EQ(acc.value(), 1.0);  // vacuously healthy before evidence
  EXPECT_EQ(acc.samples(), 0u);
  acc.add(true);
  acc.add(false);
  EXPECT_DOUBLE_EQ(acc.value(), 0.5);
  EXPECT_EQ(acc.samples(), 2u);
  acc.add(true);
  acc.add(true);
  EXPECT_DOUBLE_EQ(acc.value(), 0.75);
  // Window is full: the initial miss falls out after one more sample.
  acc.add(true);
  EXPECT_DOUBLE_EQ(acc.value(), 0.75);
  acc.add(true);
  EXPECT_DOUBLE_EQ(acc.value(), 1.0);
  EXPECT_EQ(acc.samples(), 4u);
  EXPECT_EQ(acc.total(), 6u);
}

TEST(LatencyRecorder, PercentilesOverRecordedSamples) {
  serve::LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(static_cast<double>(i) * 1e-3);
  const serve::LatencyStats st = rec.stats();
  EXPECT_EQ(st.samples, 100u);
  EXPECT_NEAR(st.p50, 0.0505, 1e-3);
  EXPECT_NEAR(st.p99, 0.100, 1.5e-3);
  EXPECT_NEAR(st.mean, 0.0505, 1e-9);
  EXPECT_DOUBLE_EQ(st.max, 0.100);
}

// ------------------------------------------------------------- policy units

serve::PolicyContext ctx_at(double now, double acc, std::size_t samples) {
  serve::PolicyContext ctx;
  ctx.now = now;
  ctx.window_accuracy = acc;
  ctx.window_samples = samples;
  return ctx;
}

TEST(Policies, ScheduledRefreshFiresOncePerPeriod) {
  auto policy = serve::make_scheduled_refresh(1.0);
  EXPECT_EQ(policy->on_check(ctx_at(0.0, 1.0, 0)).kind, serve::ActionKind::kRefresh);
  EXPECT_EQ(policy->on_check(ctx_at(0.5, 1.0, 0)).kind, serve::ActionKind::kNone);
  EXPECT_EQ(policy->on_check(ctx_at(1.25, 1.0, 0)).kind, serve::ActionKind::kRefresh);
  EXPECT_EQ(policy->on_check(ctx_at(1.5, 1.0, 0)).kind, serve::ActionKind::kNone);
}

TEST(Policies, WatchdogNeedsEvidenceThenBacksOff) {
  auto policy = serve::make_accuracy_watchdog(0.9, 32, 1.0, 4.0);
  // Below the floor but without enough evidence: no action.
  EXPECT_EQ(policy->on_check(ctx_at(0.0, 0.5, 8)).kind, serve::ActionKind::kNone);
  // Evidence arrives: fire, then hold fire during the backoff.
  EXPECT_EQ(policy->on_check(ctx_at(0.1, 0.5, 64)).kind, serve::ActionKind::kRefresh);
  EXPECT_EQ(policy->on_check(ctx_at(0.5, 0.5, 64)).kind, serve::ActionKind::kNone);
  // Backoff expired and still unhealthy: fire again, backoff doubles.
  EXPECT_EQ(policy->on_check(ctx_at(1.2, 0.5, 64)).kind, serve::ActionKind::kRefresh);
  EXPECT_EQ(policy->on_check(ctx_at(2.5, 0.5, 64)).kind, serve::ActionKind::kNone);
  EXPECT_EQ(policy->on_check(ctx_at(3.3, 0.5, 64)).kind, serve::ActionKind::kRefresh);
  // A healthy window re-arms the initial backoff.
  EXPECT_EQ(policy->on_check(ctx_at(3.5, 0.99, 64)).kind, serve::ActionKind::kNone);
  EXPECT_EQ(policy->on_check(ctx_at(4.5, 0.5, 64)).kind, serve::ActionKind::kRefresh);
  EXPECT_EQ(policy->on_check(ctx_at(5.0, 0.5, 64)).kind, serve::ActionKind::kNone);
  EXPECT_EQ(policy->on_check(ctx_at(5.6, 0.5, 64)).kind, serve::ActionKind::kRefresh);
}

TEST(Policies, SpareSwapPrefersSpareWhenReady) {
  auto policy = serve::make_spare_swap(0.9, 32, 1.0, 4.0);
  serve::PolicyContext ctx = ctx_at(0.0, 0.5, 64);
  ctx.spare_ready = true;
  EXPECT_EQ(policy->on_check(ctx).kind, serve::ActionKind::kSwapToSpare);
  ctx.now = 2.0;
  ctx.spare_ready = false;
  EXPECT_EQ(policy->on_check(ctx).kind, serve::ActionKind::kRefresh);
}

TEST(Policies, RequeryEscalatesBoundedAndOdd) {
  auto policy = serve::make_requery_escalation(0.9, 32, 7);
  serve::PolicyContext ctx = ctx_at(0.0, 0.5, 64);
  ctx.votes = 1;
  serve::PolicyAction act = policy->on_check(ctx);
  ASSERT_EQ(act.kind, serve::ActionKind::kSetVotes);
  EXPECT_EQ(act.votes, 3u);
  ctx.votes = act.votes;
  act = policy->on_check(ctx);
  ASSERT_EQ(act.kind, serve::ActionKind::kSetVotes);
  EXPECT_EQ(act.votes, 5u);
  ctx.votes = 7;  // at the cap: no further escalation
  EXPECT_EQ(policy->on_check(ctx).kind, serve::ActionKind::kNone);
  // Recovery above floor + margin de-escalates.
  ctx.window_accuracy = 0.99;
  act = policy->on_check(ctx);
  ASSERT_EQ(act.kind, serve::ActionKind::kSetVotes);
  EXPECT_EQ(act.votes, 5u);
}

// ----------------------------------------------------------- end-to-end loop

/// Small-but-real serving scenario: analog-encoded HDC on nodal-solved RRAM
/// tiles, FeFET CAM class words, sized so a run takes ~a second (sanitizer
/// budgets included).  Drift and floor are tuned like the bench: the healthy
/// model clears the floor comfortably; sustained drift pulls the baseline
/// through it around mid-run.
serve::ServedModelConfig small_model() {
  serve::ServedModelConfig mc;
  mc.data.n_classes = 4;
  mc.data.dim = 16;
  mc.data.train_per_class = 15;
  mc.data.test_per_class = 8;
  mc.model.hv_dim = 64;
  mc.subarray.cols = 32;
  return mc;
}

serve::ServingConfig small_serving() {
  serve::ServingConfig cfg;
  cfg.total_requests = 640;
  cfg.check_interval = 16;
  cfg.accuracy_window = 96;
  cfg.floor_min_samples = 48;
  cfg.accuracy_floor = 0.80;
  cfg.drift_time_scale = 2000.0;
  cfg.seed = 7;
  return cfg;
}

serve::ServingReport run_with(const serve::ServingConfig& cfg,
                              std::unique_ptr<serve::RecalibrationPolicy> policy,
                              std::uint64_t model_seed = 7) {
  serve::ServedHdcModel model(small_model(), model_seed);
  return serve::ServingLoop(cfg).run(model, *policy);
}

std::unique_ptr<serve::RecalibrationPolicy> small_watchdog(const serve::ServingConfig& cfg) {
  return serve::make_accuracy_watchdog(cfg.accuracy_floor + 0.06, cfg.floor_min_samples, 0.04,
                                       0.15);
}

TEST(ServingLoop, SameSeedRunsAreByteIdentical) {
  const serve::ServingConfig cfg = small_serving();
  const serve::ServingReport a = run_with(cfg, small_watchdog(cfg));
  const serve::ServingReport b = run_with(cfg, small_watchdog(cfg));
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.recal_events, b.recal_events);
  EXPECT_DOUBLE_EQ(a.overall_accuracy, b.overall_accuracy);
  EXPECT_DOUBLE_EQ(a.latency.p99, b.latency.p99);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trajectory[i].accuracy, b.trajectory[i].accuracy);
    EXPECT_DOUBLE_EQ(a.trajectory[i].qps, b.trajectory[i].qps);
  }
}

TEST(ServingLoop, BitIdenticalAcrossThreadCounts) {
  // The batched analog encode is the only internally-parallel stage; the
  // report checksum covers every prediction, latency and trajectory sample.
  const serve::ServingConfig cfg = small_serving();
  set_parallel_threads(1);
  const serve::ServingReport one = run_with(cfg, small_watchdog(cfg));
  set_parallel_threads(8);
  const serve::ServingReport eight = run_with(cfg, small_watchdog(cfg));
  set_parallel_threads(0);
  EXPECT_EQ(one.checksum, eight.checksum);
  EXPECT_EQ(one.served, eight.served);
  EXPECT_DOUBLE_EQ(one.overall_accuracy, eight.overall_accuracy);
}

TEST(ServingLoop, WatchdogHoldsFloorBaselineViolates) {
  const serve::ServingConfig cfg = small_serving();
  const serve::ServingReport baseline = run_with(cfg, serve::make_no_recalibration());
  const serve::ServingReport guarded = run_with(cfg, small_watchdog(cfg));
  EXPECT_FALSE(baseline.floor_held) << "baseline min window " << baseline.min_window_accuracy;
  EXPECT_GT(baseline.floor_violation_ticks, 0u);
  EXPECT_TRUE(guarded.floor_held) << "guarded min window " << guarded.min_window_accuracy;
  EXPECT_GT(guarded.recal_events, 0u);
  EXPECT_GT(guarded.cam_cells_rewritten, 0u);
  EXPECT_GT(guarded.min_window_accuracy, baseline.min_window_accuracy);
  EXPECT_GT(guarded.overall_accuracy, baseline.overall_accuracy);
}

TEST(ServingLoop, OverloadShedsInsteadOfQueueingUnboundedly) {
  serve::ServingConfig cfg = small_serving();
  cfg.total_requests = 256;
  cfg.drift_time_scale = 0.0;
  cfg.arrival_rate = 1e4;      // ~14x the service rate: heavy overload
  cfg.max_queue_wait_s = 0.01;
  auto policy = serve::make_no_recalibration();
  serve::ServedHdcModel model(small_model(), 7);
  const serve::ServingReport rep = serve::ServingLoop(cfg).run(model, *policy);
  EXPECT_GT(rep.shed_admission, 0u);
  EXPECT_GT(rep.served, 0u);
  EXPECT_EQ(rep.served + rep.shed_admission, rep.arrivals);
  // Every served request saw a bounded queue: sojourn <= wait cap + service.
  EXPECT_LT(rep.latency.max, cfg.max_queue_wait_s + 0.1);
}

TEST(ServingLoop, DegradationLadderShedVsBlockVsDegraded) {
  // A scheduled refresh guarantees recalibration windows; compare how each
  // degradation mode treats the requests that land inside them.
  serve::ServingConfig cfg = small_serving();
  cfg.total_requests = 256;
  cfg.drift_time_scale = 0.0;
  // Stretch the recalibration window (~40 ms for the 4 class words) so a
  // burst of requests lands inside it and the block dwarfs ordinary
  // queueing excursions.
  cfg.cam_write_time_per_word_s = 1e-2;

  cfg.degrade = serve::DegradeMode::kServeDegraded;
  const serve::ServingReport degraded =
      run_with(cfg, serve::make_scheduled_refresh(0.2));
  EXPECT_GT(degraded.degraded, 0u);
  EXPECT_EQ(degraded.shed_recal, 0u);
  EXPECT_EQ(degraded.served, degraded.arrivals);

  cfg.degrade = serve::DegradeMode::kShed;
  const serve::ServingReport shed = run_with(cfg, serve::make_scheduled_refresh(0.2));
  EXPECT_GT(shed.shed_recal, 0u);
  EXPECT_EQ(shed.degraded, 0u);
  EXPECT_EQ(shed.served + shed.shed_recal + shed.shed_admission, shed.arrivals);

  cfg.degrade = serve::DegradeMode::kBlock;
  const serve::ServingReport blocked = run_with(cfg, serve::make_scheduled_refresh(0.2));
  EXPECT_EQ(blocked.degraded, 0u);
  EXPECT_EQ(blocked.shed_recal, 0u);
  // Blocking pushes the recalibration window onto the tail latency.
  EXPECT_GT(blocked.latency.max, degraded.latency.max);
}

TEST(ServingLoop, RequeryRaisesVotesUnderDriftAndStaysBounded) {
  serve::ServingConfig cfg = small_serving();
  const serve::ServingReport rep =
      run_with(cfg, serve::make_requery_escalation(cfg.accuracy_floor, cfg.floor_min_samples, 5));
  std::size_t max_votes = 0;
  for (const serve::TrajectoryPoint& pt : rep.trajectory) {
    EXPECT_EQ(pt.votes % 2, 1u) << "votes must stay odd for majority voting";
    max_votes = std::max(max_votes, pt.votes);
  }
  EXPECT_GT(max_votes, 1u) << "drift should trigger vote escalation";
  EXPECT_LE(max_votes, 5u);
  // Extra votes cost latency: the p99 carries the escalation.
  const serve::ServingReport baseline = run_with(cfg, serve::make_no_recalibration());
  EXPECT_GE(rep.latency.p99, baseline.latency.p99);
}

TEST(ServingLoop, SpareSwapAvoidsRecalWindows) {
  serve::ServingConfig cfg = small_serving();
  // Make refresh windows long enough to hurt, so the spare's advantage shows.
  cfg.cam_write_time_per_word_s = 1e-2;
  cfg.degrade = serve::DegradeMode::kShed;
  cfg.spare_reprogram_s = 0.05;
  const serve::ServingReport swap = run_with(
      cfg, serve::make_spare_swap(cfg.accuracy_floor + 0.04, cfg.floor_min_samples, 0.05, 0.2));
  EXPECT_GT(swap.spare_swaps, 0u);
  EXPECT_EQ(swap.shed_recal, 0u) << "spare swaps must not open recalibration windows";
}

TEST(ServingLoop, ScheduledPolicyRefreshCountMatchesPeriod) {
  serve::ServingConfig cfg = small_serving();
  cfg.drift_time_scale = 0.0;
  const serve::ServingReport rep = run_with(cfg, serve::make_scheduled_refresh(0.25));
  // Duration ~0.9s at the derived arrival rate: one refresh at t=0 plus one
  // per elapsed period.
  const std::size_t expected =
      1 + static_cast<std::size_t>(rep.trajectory.back().t / 0.25);
  EXPECT_NEAR(static_cast<double>(rep.recal_events), static_cast<double>(expected), 1.0);
  EXPECT_GT(rep.recal_energy_j, 0.0);
}

}  // namespace
}  // namespace xlds
