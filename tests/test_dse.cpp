// Unit tests for the adaptive DSE subsystem: search space indexing, the
// crash-safe journal, the fidelity ladder, the drivers, and the two
// headline acceptance properties — budgeted search recovers the brute-force
// Pareto front, and a killed run resumed from its journal is bit-identical
// to one that never died.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/pareto.hpp"
#include "dse/engine.hpp"
#include "dse/jobspec.hpp"
#include "dse/journal.hpp"
#include "dse/space.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace xlds::dse {
namespace {

namespace fs = std::filesystem;

// Unique per-test scratch path, cleaned up on destruction.
class TempPath {
 public:
  explicit TempPath(const std::string& stem)
      : path_((fs::temp_directory_path() /
               ("xlds_dse_" + stem + "_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this))))
                  .string()) {
    fs::remove(path_);
  }
  ~TempPath() { fs::remove(path_); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::set<std::string> front_keys(const ExplorationResult& r) {
  std::set<std::string> keys;
  for (const std::size_t i : r.front) keys.insert(r.evaluated[i].point.to_string());
  return keys;
}

// Brute force at the same fidelity the engine searches at: evaluate every
// viable point, dedup, take the front.
ExplorationResult brute_force(const std::string& application, FidelityConfig fidelity = {}) {
  EngineConfig config;
  config.application = application;
  config.strategy = "lhs";
  config.budget = 0;  // one charge per viable point
  config.fidelity = fidelity;
  return explore(config);
}

bool same_foms(const ExplorationResult& a, const ExplorationResult& b) {
  if (a.evaluated.size() != b.evaluated.size()) return false;
  for (std::size_t i = 0; i < a.evaluated.size(); ++i) {
    const core::Fom& fa = a.evaluated[i].fom;
    const core::Fom& fb = b.evaluated[i].fom;
    if (a.evaluated[i].point.to_string() != b.evaluated[i].point.to_string()) return false;
    if (a.tiers[i] != b.tiers[i]) return false;
    // Bit-identical, not approximately equal.
    if (fa.latency != fb.latency || fa.energy != fb.energy ||
        fa.area_mm2 != fb.area_mm2 || fa.accuracy != fb.accuracy ||
        fa.feasible != fb.feasible || fa.note != fb.note)
      return false;
  }
  return true;
}

// ---- search space -----------------------------------------------------------

TEST(SearchSpace, IndexRoundTripAndViableCount) {
  const SearchSpace space;
  EXPECT_EQ(space.size(), 168u);  // 6 devices x 7 archs x 4 algos
  std::size_t viable = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.index_of(space.at(i)), i);
    if (!space.culled(i)) ++viable;
  }
  EXPECT_EQ(space.viable_count(), viable);
  EXPECT_GT(viable, 0u);
  EXPECT_LT(viable, space.size());
}

TEST(SearchSpace, HashSeparatesJobs) {
  const SearchSpace full;
  const SearchSpace other_app({}, "omniglot-like");
  core::SpaceAxes narrow;
  narrow.devices = {device::DeviceKind::kRram};
  const SearchSpace sub(narrow);
  EXPECT_NE(full.hash(), other_app.hash());
  EXPECT_NE(full.hash(), sub.hash());
  EXPECT_EQ(full.hash(), SearchSpace().hash());  // pure function of the job
}

// ---- journal ----------------------------------------------------------------

TEST(Journal, RoundTripsRecords) {
  TempPath path("roundtrip");
  Journal::Record r1{7, 0, {1.0, 2.0, 3.0, 0.5, true, "hello"}};
  Journal::Record r2{11, 2, {4.0, 5.0, 6.0, 0.25, false, ""}};
  {
    Journal j(path.str(), 42);
    EXPECT_FALSE(j.open_info().existed);
    j.append(r1);
    j.append(r2);
  }
  Journal j(path.str(), 42);
  EXPECT_TRUE(j.open_info().existed);
  ASSERT_EQ(j.records().size(), 2u);
  EXPECT_EQ(j.open_info().dropped_bytes, 0u);
  EXPECT_EQ(j.records()[0].key, 7u);
  EXPECT_EQ(j.records()[0].fom.note, "hello");
  EXPECT_EQ(j.records()[1].fidelity, 2u);
  EXPECT_FALSE(j.records()[1].fom.feasible);
  EXPECT_EQ(j.records()[1].fom.accuracy, 0.25);
}

TEST(Journal, TruncatesTornTail) {
  TempPath path("torn");
  {
    Journal j(path.str(), 1);
    j.append({1, 0, {1, 1, 1, 1, true, "first"}});
    j.append({2, 0, {2, 2, 2, 2, true, "second"}});
  }
  const auto full_size = fs::file_size(path.str());
  // Tear the last record mid-body, as a crash during write would.
  fs::resize_file(path.str(), full_size - 10);
  {
    Journal j(path.str(), 1);
    ASSERT_EQ(j.records().size(), 1u);
    EXPECT_EQ(j.records()[0].fom.note, "first");
    EXPECT_GT(j.open_info().dropped_bytes, 0u);
    // Appending after recovery lands where the torn record was.
    j.append({3, 0, {3, 3, 3, 3, true, "third"}});
  }
  Journal j(path.str(), 1);
  ASSERT_EQ(j.records().size(), 2u);
  EXPECT_EQ(j.records()[1].fom.note, "third");
}

TEST(Journal, CorruptChecksumDropsSuffix) {
  TempPath path("corrupt");
  {
    Journal j(path.str(), 9);
    j.append({1, 0, {1, 1, 1, 1, true, "aaaa"}});
    j.append({2, 0, {2, 2, 2, 2, true, "bbbb"}});
  }
  // Flip one byte inside the *first* record's body: everything from that
  // record on is distrusted, including the intact record after it.
  std::fstream f(path.str(), std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(30);
  f.put('\xff');
  f.close();
  Journal j(path.str(), 9);
  EXPECT_EQ(j.records().size(), 0u);
  EXPECT_GT(j.open_info().dropped_bytes, 0u);
}

TEST(Journal, RejectsForeignFiles) {
  TempPath garbage("garbage");
  std::ofstream(garbage.str()) << "this is not a journal, honest";
  EXPECT_THROW(Journal(garbage.str(), 1), PreconditionError);

  TempPath other("otherjob");
  { Journal j(other.str(), 1); }
  EXPECT_THROW(Journal(other.str(), 2), PreconditionError);  // job hash mismatch
}

// ---- fidelity ladder --------------------------------------------------------

TEST(FidelityLadder, DigitalPointsPassThroughUnchanged) {
  FidelityConfig config;
  config.max_fidelity = Fidelity::kMonteCarlo;
  const FidelityLadder ladder(config, core::profile_for("isolet-like"));
  core::DesignPoint p;
  p.device = device::DeviceKind::kSram;
  p.arch = core::ArchKind::kGpu;
  p.algo = core::AlgoKind::kMlp;
  const core::Fom lo = ladder.evaluate(p, Fidelity::kAnalytic);
  const core::Fom hi = ladder.evaluate(p, Fidelity::kMonteCarlo);
  EXPECT_EQ(lo.latency, hi.latency);
  EXPECT_EQ(lo.accuracy, hi.accuracy);
}

TEST(FidelityLadder, HigherTiersOnlyDiscountInMemoryAccuracy) {
  FidelityConfig config;
  config.max_fidelity = Fidelity::kMonteCarlo;
  const FidelityLadder ladder(config, core::profile_for("isolet-like"));
  core::DesignPoint p;
  p.device = device::DeviceKind::kRram;
  p.arch = core::ArchKind::kCrossbarAccelerator;
  p.algo = core::AlgoKind::kCnn;
  const core::Fom analytic = ladder.evaluate(p, Fidelity::kAnalytic);
  const core::Fom nodal = ladder.evaluate(p, Fidelity::kNodal);
  const core::Fom mc = ladder.evaluate(p, Fidelity::kMonteCarlo);
  ASSERT_TRUE(analytic.feasible);
  EXPECT_LE(nodal.accuracy, analytic.accuracy);
  EXPECT_LE(mc.accuracy, nodal.accuracy);
  EXPECT_EQ(nodal.latency, analytic.latency);  // crossbar rung touches accuracy only
}

TEST(FidelityLadder, DeterministicAcrossInstances) {
  FidelityConfig config;
  config.max_fidelity = Fidelity::kMonteCarlo;
  const FidelityLadder a(config, core::profile_for("isolet-like"));
  const FidelityLadder b(config, core::profile_for("isolet-like"));
  core::DesignPoint p;
  p.device = device::DeviceKind::kFeFet;
  p.arch = core::ArchKind::kCamAccelerator;
  p.algo = core::AlgoKind::kHdc;
  const core::Fom fa = a.evaluate(p, Fidelity::kMonteCarlo);
  const core::Fom fb = b.evaluate(p, Fidelity::kMonteCarlo);
  EXPECT_EQ(fa.accuracy, fb.accuracy);
  EXPECT_EQ(fa.latency, fb.latency);
  EXPECT_EQ(fa.note, fb.note);
}

TEST(FidelityLadder, RejectsTiersAboveMax) {
  const FidelityLadder ladder({}, core::profile_for("isolet-like"));  // max = analytic
  EXPECT_THROW(ladder.evaluate(core::DesignPoint{}, Fidelity::kNodal),
               PreconditionError);
}

// ---- acceptance: budgeted search recovers the brute-force front -------------

TEST(Acceptance, Nsga2At20PercentBudgetRecoversFront) {
  const ExplorationResult brute = brute_force("isolet-like");
  const std::set<std::string> want = front_keys(brute);
  ASSERT_GE(want.size(), 3u);

  EngineConfig config;
  config.strategy = "nsga2";
  config.budget = SearchSpace().size() / 5;  // 20% of the 168-point grid
  config.seed = 1;
  const ExplorationResult got = explore(config);
  EXPECT_LE(got.stats.charges, config.budget);

  const std::set<std::string> found = front_keys(got);
  std::size_t recovered = 0;
  for (const std::string& k : want) recovered += found.count(k);
  // >= 90% of the brute-force Pareto front at <= 20% of its evaluator calls.
  EXPECT_GE(10 * recovered, 9 * want.size())
      << "recovered " << recovered << "/" << want.size() << " front points";
}

// Successive halving's contract is different from NSGA-II's: it buys
// fidelity-ladder triage (cheap rungs screen cohorts for the expensive ones;
// see Engine.HalvingClimbsEveryRung), not Pareto closure.  On a single-rung
// ladder it reduces to a stratified cohort, so the bar here is budget
// discipline plus majority front recovery — the >=90%-at-20%-budget
// criterion is carried by the NSGA-II test above.
TEST(Acceptance, HalvingAt20PercentBudgetKeepsMajorityFront) {
  const ExplorationResult brute = brute_force("isolet-like");
  const std::set<std::string> want = front_keys(brute);

  EngineConfig config;
  config.strategy = "halving";
  config.budget = SearchSpace().size() / 5;
  config.seed = 1;
  const ExplorationResult got = explore(config);
  EXPECT_LE(got.stats.charges, config.budget);

  const std::set<std::string> found = front_keys(got);
  std::size_t recovered = 0;
  for (const std::string& k : want) recovered += found.count(k);
  EXPECT_GE(2 * recovered, want.size())
      << "recovered " << recovered << "/" << want.size() << " front points";
}

// ---- acceptance: crash + resume is bit-identical ----------------------------

TEST(Acceptance, ResumeAfterCrashIsBitIdentical) {
  EngineConfig config;
  config.strategy = "nsga2";
  config.budget = 33;
  config.seed = 5;

  // Reference: uninterrupted run, no journal.
  const ExplorationResult reference = explore(config);
  ASSERT_GT(reference.stats.computed, 12u);

  // Crash after 12 durable appends, then resume from the journal.
  TempPath journal("resume");
  config.journal_path = journal.str();
  config.abort_after_computed = 12;
  EXPECT_THROW(explore(config), AbortInjected);

  config.abort_after_computed = 0;
  const ExplorationResult resumed = explore(config);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.stats.journal_replayed, 12u);
  EXPECT_EQ(resumed.stats.journal_hits, 12u);
  EXPECT_EQ(resumed.stats.computed, reference.stats.computed - 12u);

  EXPECT_TRUE(same_foms(reference, resumed));
  EXPECT_EQ(reference.front, resumed.front);
  EXPECT_EQ(reference.ranking, resumed.ranking);
  EXPECT_EQ(front_keys(reference), front_keys(resumed));

  // The serialised result documents (without stats) match byte for byte.
  EXPECT_EQ(result_to_json(reference, false).dump(2),
            result_to_json(resumed, false).dump(2));
}

TEST(Acceptance, ResumeSurvivesTornJournalTail) {
  EngineConfig config;
  config.strategy = "lhs";
  config.budget = 20;
  config.seed = 2;
  const ExplorationResult reference = explore(config);

  TempPath journal("torn_resume");
  config.journal_path = journal.str();
  config.abort_after_computed = 10;
  EXPECT_THROW(explore(config), AbortInjected);
  // Tear the journal's last record, as a crash mid-append would.
  fs::resize_file(journal.str(), fs::file_size(journal.str()) - 7);

  config.abort_after_computed = 0;
  const ExplorationResult resumed = explore(config);
  EXPECT_EQ(resumed.stats.journal_replayed, 9u);  // last record lost to the tear
  EXPECT_TRUE(same_foms(reference, resumed));
  EXPECT_EQ(reference.front, resumed.front);
}

// ---- determinism across thread counts ---------------------------------------

TEST(Engine, ThreadCountDoesNotChangeResults) {
  EngineConfig config;
  config.strategy = "nsga2";
  config.budget = 30;
  config.seed = 11;

  set_parallel_threads(1);
  const ExplorationResult serial = explore(config);
  set_parallel_threads(7);
  const ExplorationResult wide = explore(config);
  set_parallel_threads(0);  // restore default

  EXPECT_TRUE(same_foms(serial, wide));
  EXPECT_EQ(serial.front, wide.front);
  EXPECT_EQ(serial.ranking, wide.ranking);
}

TEST(Engine, SchedulerModeDoesNotChangeResultsOrJournalBytes) {
  // Static vs work-stealing dispatch on the same MC-fidelity job spec: the
  // results — and every journal byte — must be identical, because placement
  // decides only *where* a chunk runs and the journal appends in charge
  // order either way.
  const auto read_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  };
  EngineConfig config;
  config.strategy = "nsga2";
  config.budget = 60;
  config.seed = 7;
  config.fidelity.max_fidelity = Fidelity::kMonteCarlo;

  TempPath j_static("sched_static"), j_steal("sched_steal");
  set_parallel_threads(8);
  set_parallel_scheduler(SchedulerMode::kStatic);
  config.journal_path = j_static.str();
  const ExplorationResult r_static = explore(config);
  set_parallel_scheduler(SchedulerMode::kWorkStealing);
  config.journal_path = j_steal.str();
  const ExplorationResult r_steal = explore(config);
  set_parallel_threads(0);  // restore defaults (mode already back to stealing)

  EXPECT_TRUE(same_foms(r_static, r_steal));
  EXPECT_EQ(r_static.front, r_steal.front);
  EXPECT_EQ(r_static.ranking, r_steal.ranking);
  const std::string bytes_static = read_bytes(j_static.str());
  ASSERT_FALSE(bytes_static.empty());
  EXPECT_EQ(bytes_static, read_bytes(j_steal.str()));
}

// ---- engine semantics -------------------------------------------------------

TEST(Engine, BudgetZeroMeansViableSpaceAndSaturates) {
  for (const char* strategy : {"random", "lhs"}) {
    EngineConfig config;
    config.strategy = strategy;
    config.budget = 0;
    const ExplorationResult r = explore(config);
    EXPECT_EQ(r.stats.charges, SearchSpace().viable_count()) << strategy;
    EXPECT_EQ(r.evaluated.size(), SearchSpace().viable_count()) << strategy;
    EXPECT_EQ(r.stats.culled_requests, 0u) << strategy;  // drivers never pay for culls
  }
}

TEST(Engine, EvaluatedPointsAreDistinct) {
  EngineConfig config;
  config.strategy = "nsga2";
  config.budget = 40;
  const ExplorationResult r = explore(config);
  const std::vector<std::size_t> dedup = core::dedup_points(r.evaluated);
  EXPECT_EQ(dedup.size(), r.evaluated.size());  // engine dedups by construction
}

TEST(Engine, HalvingClimbsEveryRung) {
  EngineConfig config;
  config.strategy = "halving";
  config.budget = 60;
  config.fidelity.max_fidelity = Fidelity::kMonteCarlo;
  const ExplorationResult r = explore(config);
  // Surrogate off: tier 0 stays untouched, every physics rung gets charges.
  EXPECT_EQ(r.stats.charges_by_tier[0], 0u);
  EXPECT_GT(r.stats.charges_by_tier[1], 0u);
  EXPECT_GT(r.stats.charges_by_tier[2], 0u);
  EXPECT_GT(r.stats.charges_by_tier[3], 0u);
  // Wider cohorts at cheaper rungs.
  EXPECT_GE(r.stats.charges_by_tier[1], r.stats.charges_by_tier[2]);
  EXPECT_GE(r.stats.charges_by_tier[2], r.stats.charges_by_tier[3]);
}

TEST(Engine, RestrictedAxesStayInsideTheSubspace) {
  EngineConfig config;
  config.strategy = "random";
  config.budget = 10;
  config.axes.devices = {device::DeviceKind::kRram, device::DeviceKind::kFeFet};
  config.axes.algos = {core::AlgoKind::kHdc};
  const ExplorationResult r = explore(config);
  EXPECT_GT(r.evaluated.size(), 0u);
  for (const core::ScoredPoint& sp : r.evaluated) {
    EXPECT_TRUE(sp.point.device == device::DeviceKind::kRram ||
                sp.point.device == device::DeviceKind::kFeFet);
    EXPECT_EQ(sp.point.algo, core::AlgoKind::kHdc);
  }
}

// ---- job specs --------------------------------------------------------------

TEST(JobSpec, ParsesFullDocument) {
  const EngineConfig config = config_from_spec_text(R"({
    "application": "isolet-like",
    "strategy": "halving",
    "budget": 33,
    "seed": 7,
    "space": {"devices": ["RRAM", "FeFET"], "algos": ["HDC", "MANN"]},
    "fidelity": {"max": "mc", "mc_fault_rate": 0.05},
    "driver": {"population": 12, "eta": 2.0},
    "weights": {"accuracy": 10.0},
    "journal": "runs/a.xjl"
  })");
  EXPECT_EQ(config.strategy, "halving");
  EXPECT_EQ(config.budget, 33u);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.axes.devices.size(), 2u);
  EXPECT_TRUE(config.axes.archs.empty());  // absent axis = every value
  EXPECT_EQ(config.fidelity.max_fidelity, Fidelity::kMonteCarlo);
  EXPECT_EQ(config.fidelity.mc_fault_rate, 0.05);
  EXPECT_EQ(config.driver.population, 12u);
  EXPECT_EQ(config.driver.halving_eta, 2.0);
  EXPECT_EQ(config.weights.accuracy, 10.0);
  EXPECT_EQ(config.journal_path, "runs/a.xjl");
}

TEST(JobSpec, RejectsTyposAndBadNames) {
  EXPECT_THROW(config_from_spec_text(R"({"bugdet": 10})"), PreconditionError);
  EXPECT_THROW(config_from_spec_text(R"({"space": {"devices": ["ReRAM"]}})"),
               PreconditionError);
  EXPECT_THROW(config_from_spec_text(R"({"fidelity": {"max": "spice"}})"),
               PreconditionError);
  EXPECT_THROW(config_from_spec_text(R"({"budget": -3})"), PreconditionError);
}

TEST(JobSpec, ResultSerialisationRoundTrips) {
  EngineConfig config;
  config.strategy = "lhs";
  config.budget = 15;
  const ExplorationResult r = explore(config);

  const util::Json doc = util::Json::parse(result_to_json(r).dump(2));
  EXPECT_EQ(doc.at("strategy").as_string(), "lhs");
  EXPECT_EQ(doc.at("pareto_front").size(), r.front.size());
  EXPECT_EQ(doc.at("triage_ranking").size(), r.ranking.size());
  EXPECT_EQ(static_cast<std::size_t>(doc.at("stats").at("charges").as_number()),
            r.stats.charges);

  const std::string csv = result_to_csv(r);
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            r.evaluated.size() + 1);  // header + one row per point
}

TEST(JobSpec, UnknownStrategyRejected) {
  EngineConfig config;
  config.strategy = "simulated-annealing";
  EXPECT_THROW(explore(config), PreconditionError);
}

}  // namespace
}  // namespace xlds::dse
