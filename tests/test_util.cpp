// Unit tests for the util module: RNG, statistics, matrix, units, table.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace xlds {
namespace {

// ---- Rng --------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformU32Unbiased) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_u32(10)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 10, 500);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalScaled) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int heads = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.3)) ++heads;
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Rng, LognormalPositive) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(10);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 20u);
  for (std::size_t v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleMoreThanPopulationThrows) {
  Rng rng(12);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), PreconditionError);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng parent(13);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 4);
}

// ---- RunningStats -----------------------------------------------------

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(14);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i < 200 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

// ---- correlation ------------------------------------------------------

TEST(Stats, PearsonPerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> x = {1, 1, 1, 1};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonIndependentNearZero) {
  Rng rng(15);
  std::vector<double> x(5000), y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(Stats, SpearmanMonotoneNonlinearIsOne) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, SizeMismatchThrows) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 2};
  EXPECT_THROW(pearson(x, y), PreconditionError);
}

// ---- percentile / histogram --------------------------------------------

TEST(Stats, PercentileEndpointsAndMedian) {
  const std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Stats, HistogramCountsAndClamping) {
  const std::vector<double> xs = {-1.0, 0.05, 0.15, 0.95, 2.0};
  const Histogram h = Histogram::build(xs, 0.0, 1.0, 10);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bins.front(), 2u);  // -1.0 clamped + 0.05
  EXPECT_EQ(h.bins.back(), 2u);   // 0.95 + 2.0 clamped
  EXPECT_EQ(h.bins[1], 1u);
  EXPECT_DOUBLE_EQ(h.density(0), 0.4);
}

TEST(Stats, GaussianOverlapBehaviour) {
  // Zero sigma: no error.  Growing sigma: growing error, capped at 0.5.
  EXPECT_EQ(gaussian_overlap_error(0.0, 1.0, 0.0), 0.0);
  const double e1 = gaussian_overlap_error(0.0, 1.0, 0.1);
  const double e2 = gaussian_overlap_error(0.0, 1.0, 0.3);
  const double e3 = gaussian_overlap_error(0.0, 1.0, 3.0);
  EXPECT_LT(e1, e2);
  EXPECT_LT(e2, e3);
  EXPECT_LT(e3, 0.5);
  // Half-window = 0.5, sigma 0.5 -> 1 - Phi(1).
  EXPECT_NEAR(gaussian_overlap_error(0.0, 1.0, 0.5), 1.0 - phi(1.0), 1e-12);
}

TEST(Stats, PhiKnownValues) {
  EXPECT_NEAR(phi(0.0), 0.5, 1e-12);
  EXPECT_NEAR(phi(1.96), 0.975, 1e-3);
  EXPECT_NEAR(phi(-1.96), 0.025, 1e-3);
}

// ---- Matrix --------------------------------------------------------------

TEST(Matrix, MatvecKnownValues) {
  const auto m = MatrixD::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto y = m.matvec({1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MatvecTransposed) {
  const auto m = MatrixD::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto y = m.matvec_transposed({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(16);
  MatrixD m(3, 5);
  for (double& v : m.data()) v = rng.normal();
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, MatmulAgainstManual) {
  const auto a = MatrixD::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto b = MatrixD::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const auto c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, DimensionMismatchThrows) {
  const MatrixD m(2, 3);
  EXPECT_THROW(m.matvec(std::vector<double>(2)), PreconditionError);
}

// ---- units / table -------------------------------------------------------

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_ns(2.5e-9), 2.5);
  EXPECT_DOUBLE_EQ(to_pj(3.0e-12), 3.0);
  EXPECT_DOUBLE_EQ(to_um2(1e-12), 1.0);
  EXPECT_DOUBLE_EQ(from_nm(40.0), 40e-9);
  EXPECT_DOUBLE_EQ(f2_area(40e-9, 100.0), 100.0 * 1600e-18);
}

TEST(Units, SiFormat) {
  EXPECT_EQ(si_format(2.5e-9, "s", 2), "2.50 ns");
  EXPECT_EQ(si_format(3.2e-12, "J", 1), "3.2 pJ");
  EXPECT_EQ(si_format(1.5e9, "B/s", 1), "1.5 GB/s");
}

TEST(Units, SiFormatEdgeCases) {
  EXPECT_EQ(si_format(0.0, "s", 2), "0 s");
  EXPECT_EQ(si_format(-2.5e-9, "s", 2), "-2.50 ns");
  EXPECT_EQ(si_format(1.0, "V", 1), "1.0 V");
  EXPECT_EQ(fixed_format(3.14159, 2), "3.14");
  EXPECT_EQ(fixed_format(-1.5, 1), "-1.5");
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4    |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Error, RequireMacroThrowsWithMessage) {
  try {
    XLDS_REQUIRE_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
  }
}

// ---- JSON ----------------------------------------------------------------------

TEST(Json, ParsesEveryValueKind) {
  const util::Json doc = util::Json::parse(
      R"({"s": "a\n\"b\"", "n": -2.5e3, "i": 42, "t": true, "f": false,
          "z": null, "arr": [1, [2], {}], "nested": {"k": "v"}})");
  EXPECT_EQ(doc.at("s").as_string(), "a\n\"b\"");
  EXPECT_DOUBLE_EQ(doc.at("n").as_number(), -2500.0);
  EXPECT_DOUBLE_EQ(doc.at("i").as_number(), 42.0);
  EXPECT_TRUE(doc.at("t").as_bool());
  EXPECT_FALSE(doc.at("f").as_bool());
  EXPECT_TRUE(doc.at("z").is_null());
  EXPECT_EQ(doc.at("arr").size(), 3u);
  EXPECT_EQ(doc.at("arr").as_array()[1].as_array()[0].as_number(), 2.0);
  EXPECT_EQ(doc.at("nested").at("k").as_string(), "v");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), PreconditionError);
  EXPECT_THROW(doc.at("s").as_number(), PreconditionError);  // kind mismatch
}

TEST(Json, MalformedInputThrowsWithPosition) {
  for (const char* bad : {"{", "[1,]", "{\"a\": }", "tru", "\"unterminated",
                          "{\"a\": 1} trailing", "01", "{\"a\" 1}"}) {
    EXPECT_THROW(util::Json::parse(bad), PreconditionError) << bad;
  }
  try {
    util::Json::parse("{\n  \"a\": oops\n}");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos);  // line 2
  }
}

TEST(Json, DumpIsStableAndRoundTrips) {
  util::Json doc = util::Json::object();
  doc.set("b", 2).set("a", 1.5).set("list", util::Json::array());
  doc.set("b", 3);  // replace in place: insertion order must survive
  const std::string text = doc.dump();
  EXPECT_EQ(text, R"({"b":3,"a":1.5,"list":[]})");  // integral 3 prints as 3
  EXPECT_EQ(util::Json::parse(text).dump(), text);
  EXPECT_EQ(util::Json::parse(doc.dump(2)).dump(), text);  // pretty round-trip
}

// ---- ArgParse ------------------------------------------------------------------

TEST(ArgParse, ParsesOptionsFlagsAndDefaults) {
  util::ArgParse args("prog", "test");
  args.add_option("seed", "the seed", "7").add_option("out", "path").add_flag("fast", "go fast");
  const char* argv[] = {"prog", "--seed=99", "--fast"};
  std::ostringstream out, err;
  ASSERT_TRUE(args.parse(3, argv, out, err));
  EXPECT_EQ(args.uinteger("seed"), 99u);
  EXPECT_TRUE(args.provided("seed"));
  EXPECT_EQ(args.str("out"), "");  // default kept
  EXPECT_FALSE(args.provided("out"));
  EXPECT_TRUE(args.flag("fast"));
}

TEST(ArgParse, SeparateValueFormAndTypedErrors) {
  util::ArgParse args("prog", "test");
  args.add_option("threads", "width", "0");
  const char* argv[] = {"prog", "--threads", "12"};
  ASSERT_TRUE(args.parse(3, argv));
  EXPECT_EQ(args.integer("threads"), 12);
  EXPECT_THROW(args.str("unregistered"), PreconditionError);

  util::ArgParse bad("prog", "test");
  bad.add_option("n", "number", "not-a-number");
  const char* only[] = {"prog"};
  ASSERT_TRUE(bad.parse(1, only));
  EXPECT_THROW(bad.num("n"), PreconditionError);
}

TEST(ArgParse, UnknownArgumentFailsAndHelpStops) {
  util::ArgParse args("prog", "test");
  args.add_option("seed", "the seed", "1");
  const char* typo[] = {"prog", "--sede", "3"};
  std::ostringstream out, err;
  EXPECT_FALSE(args.parse(3, typo, out, err));
  EXPECT_FALSE(args.help_requested());
  EXPECT_NE(err.str().find("--sede"), std::string::npos);

  util::ArgParse help("prog", "test");
  const char* ask[] = {"prog", "--help"};
  std::ostringstream hout, herr;
  EXPECT_FALSE(help.parse(2, ask, hout, herr));
  EXPECT_TRUE(help.help_requested());
  EXPECT_NE(hout.str().find("usage: prog"), std::string::npos);
}

TEST(ArgParse, MissingValueIsAnError) {
  util::ArgParse args("prog", "test");
  args.add_option("out", "path");
  const char* argv[] = {"prog", "--out"};
  std::ostringstream out, err;
  EXPECT_FALSE(args.parse(2, argv, out, err));
  EXPECT_FALSE(args.help_requested());
}

}  // namespace
}  // namespace xlds
