// Unit tests for the analog crossbar simulator: programming, MVM fidelity,
// IR drop (analytic vs nodal), quantisation, stochastic LSH programming,
// relaxation and tiling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/tiled.hpp"

namespace xlds::xbar {
namespace {

CrossbarConfig ideal_config(std::size_t rows, std::size_t cols) {
  CrossbarConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.ir_drop = IrDropMode::kNone;
  cfg.adc.bits = 12;
  cfg.dac.bits = 8;
  return cfg;
}

MatrixD random_weights(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixD w(rows, cols);
  for (double& v : w.data()) v = rng.uniform(-1.0, 1.0);
  return w;
}

std::vector<double> random_input(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.uniform();
  return x;
}

// ---- programming ---------------------------------------------------------

TEST(Crossbar, ProgramConductancesClampsToDeviceRange) {
  Rng rng(1);
  Crossbar xb(ideal_config(4, 4), rng);
  MatrixD g(4, 4, 1.0);  // 1 S: far above g_max
  xb.program_conductances(g);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(xb.conductance(r, c), xb.config().rram.g_max);
}

TEST(Crossbar, ProgramWeightsUsesDifferentialPairs) {
  Rng rng(2);
  Crossbar xb(ideal_config(2, 4), rng);
  xb.program_weights(MatrixD::from_rows({{1.0, -1.0}, {0.0, 0.5}}));
  const auto& p = xb.config().rram;
  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), p.g_max);  // +1 -> positive col at LRS
  EXPECT_DOUBLE_EQ(xb.conductance(0, 1), p.g_min);
  EXPECT_DOUBLE_EQ(xb.conductance(0, 2), p.g_min);  // -1 -> negative col at LRS
  EXPECT_DOUBLE_EQ(xb.conductance(0, 3), p.g_max);
  EXPECT_DOUBLE_EQ(xb.conductance(1, 0), p.g_min);  // 0 -> both at HRS
  EXPECT_DOUBLE_EQ(xb.conductance(1, 1), p.g_min);
}

TEST(Crossbar, WrongShapeThrows) {
  Rng rng(3);
  Crossbar xb(ideal_config(4, 8), rng);
  EXPECT_THROW(xb.program_weights(MatrixD(4, 8)), PreconditionError);  // needs 16 phys cols
  EXPECT_THROW(xb.program_conductances(MatrixD(3, 8)), PreconditionError);
}

// ---- MVM fidelity -----------------------------------------------------------

TEST(Crossbar, IdealMvmMatchesSoftware) {
  Rng rng(4);
  Crossbar xb(ideal_config(16, 16), rng);
  const MatrixD w = random_weights(16, 8, 5);
  xb.program_weights(w);
  const auto x = random_input(16, 6);
  const auto sw = w.matvec_transposed(x);
  const auto ideal = xb.ideal_mvm(x);
  for (std::size_t j = 0; j < 8; ++j) EXPECT_NEAR(ideal[j], sw[j], 1e-12);
}

TEST(Crossbar, AnalogMvmTracksIdealWithinQuantisation) {
  Rng rng(7);
  CrossbarConfig cfg = ideal_config(32, 32);
  Crossbar xb(cfg, rng);
  const MatrixD w = random_weights(32, 16, 8);
  xb.program_weights(w);
  const auto x = random_input(32, 9);
  const auto analog = xb.mvm(x);
  const auto ideal = xb.ideal_mvm(x);
  // ADC full scale spans g_max*rows; 12-bit quantisation of each column plus
  // DAC input quantisation bounds the error to a few LSB in weight units.
  const double lsb = 32.0 * cfg.rram.g_max / (cfg.rram.g_max - cfg.rram.g_min) / 4096.0;
  for (std::size_t j = 0; j < 16; ++j) EXPECT_NEAR(analog[j], ideal[j], 8.0 * lsb + 0.02);
}

TEST(Crossbar, MvmWithoutWeightsThrows) {
  Rng rng(10);
  Crossbar xb(ideal_config(4, 4), rng);
  EXPECT_THROW(xb.mvm(random_input(4, 11)), PreconditionError);
  xb.program_stochastic_hrs();
  EXPECT_THROW(xb.mvm(random_input(4, 11)), PreconditionError);  // raw-only
  EXPECT_NO_THROW(xb.column_currents(random_input(4, 11)));
}

TEST(Crossbar, InputOutOfRangeThrows) {
  Rng rng(12);
  Crossbar xb(ideal_config(4, 4), rng);
  xb.program_stochastic_hrs();
  std::vector<double> bad = {0.5, 1.5, 0.0, 0.0};
  EXPECT_THROW(xb.column_currents(bad), PreconditionError);
}

TEST(Crossbar, ColumnCurrentsScaleWithInput) {
  Rng rng(13);
  Crossbar xb(ideal_config(8, 8), rng);
  MatrixD g(8, 8, 20e-6);
  xb.program_conductances(g);
  const auto half = xb.column_currents(std::vector<double>(8, 0.5));
  const auto full = xb.column_currents(std::vector<double>(8, 1.0));
  for (std::size_t c = 0; c < 8; ++c) EXPECT_NEAR(full[c] / half[c], 2.0, 0.05);
}

// ---- IR drop ----------------------------------------------------------------

TEST(Crossbar, IrDropReducesCurrents) {
  Rng rng(14);
  CrossbarConfig cfg = ideal_config(64, 64);
  MatrixD g(64, 64, cfg.rram.g_max);  // worst case: all LRS

  cfg.ir_drop = IrDropMode::kNone;
  Crossbar none(cfg, rng);
  none.program_conductances(g);
  cfg.ir_drop = IrDropMode::kAnalytic;
  Crossbar analytic(cfg, rng);
  analytic.program_conductances(g);

  const auto x = std::vector<double>(64, 1.0);
  const auto i_none = none.column_currents(x);
  const auto i_drop = analytic.column_currents(x);
  for (std::size_t c = 0; c < 64; ++c) EXPECT_LT(i_drop[c], i_none[c]);
}

TEST(Crossbar, AnalyticAgreesWithNodal) {
  Rng rng(15);
  CrossbarConfig cfg = ideal_config(32, 32);
  MatrixD g(32, 32, 0.5 * cfg.rram.g_max);

  cfg.ir_drop = IrDropMode::kAnalytic;
  Crossbar analytic(cfg, rng);
  analytic.program_conductances(g);
  cfg.ir_drop = IrDropMode::kNodal;
  Crossbar nodal(cfg, rng);
  nodal.program_conductances(g);

  const auto x = std::vector<double>(32, 1.0);
  const auto ia = analytic.column_currents(x);
  const auto in = nodal.column_currents(x);
  for (std::size_t c = 0; c < 32; ++c)
    EXPECT_NEAR(ia[c], in[c], 0.05 * in[c]) << "col " << c;
}

TEST(Crossbar, IrDropWorseForLargerArrays) {
  Rng rng(16);
  CrossbarConfig small = ideal_config(16, 16);
  small.ir_drop = IrDropMode::kAnalytic;
  CrossbarConfig large = ideal_config(128, 128);
  large.ir_drop = IrDropMode::kAnalytic;
  Crossbar xs(small, rng), xl(large, rng);
  MatrixD gs(16, 16, small.rram.g_max), gl(128, 128, large.rram.g_max);
  xs.program_conductances(gs);
  xl.program_conductances(gl);
  EXPECT_LT(xs.ir_drop_worst_case(), xl.ir_drop_worst_case());
  EXPECT_GT(xl.ir_drop_worst_case(), 0.0);
}

// ---- stochastic programming / relaxation ------------------------------------

TEST(Crossbar, StochasticHrsProgrammingIsRandomLowConductance) {
  Rng rng(17);
  CrossbarConfig cfg = ideal_config(32, 32);
  Crossbar xb(cfg, rng);
  xb.program_stochastic_hrs();
  RunningStats s;
  for (std::size_t r = 0; r < 32; ++r)
    for (std::size_t c = 0; c < 32; ++c) s.add(xb.conductance(r, c));
  EXPECT_LT(s.mean(), 0.3 * cfg.rram.g_max);
  EXPECT_GT(s.stddev(), 0.0);
}

TEST(Crossbar, AgeDriftsConductances) {
  Rng rng(18);
  CrossbarConfig cfg = ideal_config(8, 8);
  Crossbar xb(cfg, rng);
  MatrixD g(8, 8, 25e-6);
  xb.program_conductances(g);
  xb.age(100.0);
  int changed = 0;
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      if (std::abs(xb.conductance(r, c) - 25e-6) > 1e-9) ++changed;
  EXPECT_GT(changed, 50);
}

// ---- fault injection ----------------------------------------------------------

TEST(Crossbar, StuckCellsIgnoreProgramming) {
  Rng rng(40);
  CrossbarConfig cfg = ideal_config(8, 8);
  Crossbar xb(cfg, rng);
  xb.inject_stuck_fault(2, 3, cfg.rram.g_max);
  MatrixD g(8, 8, 10e-6);
  xb.program_conductances(g);
  EXPECT_DOUBLE_EQ(xb.conductance(2, 3), cfg.rram.g_max);  // pinned
  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), 10e-6);
  xb.age(1e4);
  EXPECT_DOUBLE_EQ(xb.conductance(2, 3), cfg.rram.g_max);  // aging skips it too
  EXPECT_EQ(xb.stuck_cell_count(), 1u);
}

TEST(Crossbar, RandomStuckFractionApproximate) {
  Rng rng(41);
  CrossbarConfig cfg = ideal_config(64, 64);
  Crossbar xb(cfg, rng);
  const std::size_t n = xb.inject_random_stuck_faults(0.1, cfg.rram.g_min);
  EXPECT_EQ(n, xb.stuck_cell_count());
  EXPECT_NEAR(static_cast<double>(n), 0.1 * 64 * 64, 80.0);
}

TEST(Crossbar, FewStuckCellsPerturbMvmBoundedly) {
  Rng rng(42);
  CrossbarConfig cfg = ideal_config(32, 32);
  Crossbar clean(cfg, rng);
  Crossbar faulty(cfg, rng);
  faulty.inject_random_stuck_faults(0.02, cfg.rram.g_min);  // 2 % stuck-at-HRS
  const MatrixD w = random_weights(32, 16, 43);
  clean.program_weights(w);
  faulty.program_weights(w);
  const auto x = random_input(32, 44);
  const auto yc = clean.mvm(x);
  const auto yf = faulty.mvm(x);
  double worst = 0.0;
  for (std::size_t j = 0; j < yc.size(); ++j) worst = std::max(worst, std::abs(yc[j] - yf[j]));
  // A stuck-at-HRS cell can remove at most ~1 weight-unit of contribution.
  EXPECT_GT(worst, 0.0);
  EXPECT_LT(worst, 3.0);
}

TEST(Crossbar, StuckFaultBoundsChecked) {
  Rng rng(45);
  Crossbar xb(ideal_config(4, 4), rng);
  EXPECT_THROW(xb.inject_stuck_fault(4, 0, 1e-6), PreconditionError);
  EXPECT_THROW(xb.inject_random_stuck_faults(1.5, 1e-6), PreconditionError);
}

// ---- cost model -------------------------------------------------------------

TEST(Crossbar, CostScalesWithAdcSharing) {
  Rng rng(19);
  CrossbarConfig few = ideal_config(32, 32);
  few.adcs_per_array = 2;
  CrossbarConfig many = ideal_config(32, 32);
  many.adcs_per_array = 32;
  Crossbar xf(few, rng), xm(many, rng);
  EXPECT_GT(xf.mvm_cost().latency, xm.mvm_cost().latency);
  // Energy is conversion-count bound, not sharing bound.
  EXPECT_NEAR(xf.mvm_cost().energy, xm.mvm_cost().energy, 1e-12);
}

TEST(Crossbar, HigherAdcResolutionCostsMore) {
  Rng rng(20);
  CrossbarConfig lo = ideal_config(16, 16);
  lo.adc.bits = 4;
  CrossbarConfig hi = ideal_config(16, 16);
  hi.adc.bits = 10;
  Crossbar xl(lo, rng), xh(hi, rng);
  EXPECT_GT(xh.mvm_cost().energy, xl.mvm_cost().energy);
  EXPECT_GT(xh.mvm_cost().latency, xl.mvm_cost().latency);
}

// ---- tiled crossbar ----------------------------------------------------------

TEST(TiledCrossbar, TileGridCoversLogicalShape) {
  TiledConfig cfg;
  cfg.tile = ideal_config(64, 64);  // 32 logical cols per tile
  Rng rng(21);
  TiledCrossbar t(cfg, 150, 70, rng);
  // ceil(150/64) = 3 row tiles, ceil(70/32) = 3 col tiles.
  EXPECT_EQ(t.tile_count(), 9u);
  EXPECT_EQ(t.device_count(), 9u * 64 * 64);
}

TEST(TiledCrossbar, IdealMvmMatchesSoftwareAcrossTiles) {
  TiledConfig cfg;
  cfg.tile = ideal_config(32, 32);
  Rng rng(22);
  TiledCrossbar t(cfg, 70, 40, rng);
  const MatrixD w = random_weights(70, 40, 23);
  t.program_weights(w);
  const auto x = random_input(70, 24);
  const auto sw = w.matvec_transposed(x);
  const auto got = t.ideal_mvm(x);
  for (std::size_t j = 0; j < 40; ++j) EXPECT_NEAR(got[j], sw[j], 1e-12);
}

TEST(TiledCrossbar, AnalogMvmTracksSoftware) {
  TiledConfig cfg;
  cfg.tile = ideal_config(32, 32);
  cfg.tile.adc.bits = 12;
  Rng rng(25);
  TiledCrossbar t(cfg, 60, 20, rng);
  const MatrixD w = random_weights(60, 20, 26);
  t.program_weights(w);
  const auto x = random_input(60, 27);
  const auto sw = w.matvec_transposed(x);
  const auto got = t.mvm(x);
  for (std::size_t j = 0; j < 20; ++j) EXPECT_NEAR(got[j], sw[j], 0.25) << j;
}

TEST(TiledCrossbar, CostAggregation) {
  TiledConfig cfg;
  cfg.tile = ideal_config(64, 64);
  Rng rng(28);
  TiledCrossbar one(cfg, 64, 32, rng);
  TiledCrossbar grid(cfg, 256, 128, rng);
  const MvmCost c1 = one.mvm_cost();
  const MvmCost cg = grid.mvm_cost();
  EXPECT_GT(cg.energy, 10.0 * c1.energy);            // 16 tiles
  EXPECT_LT(cg.latency, 2.0 * c1.latency);           // parallel tiles
}

TEST(TiledCrossbar, ShapeMismatchThrows) {
  TiledConfig cfg;
  cfg.tile = ideal_config(32, 32);
  Rng rng(29);
  TiledCrossbar t(cfg, 60, 20, rng);
  EXPECT_THROW(t.program_weights(MatrixD(20, 60)), PreconditionError);
  t.program_weights(random_weights(60, 20, 30));
  EXPECT_THROW(t.mvm(random_input(59, 31)), PreconditionError);
}

}  // namespace
}  // namespace xlds::xbar
