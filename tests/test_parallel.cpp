// Tests for the deterministic parallel execution layer: chunking/edge cases,
// exception propagation, and the core invariant — results are bit-identical
// regardless of the thread count — exercised on the Monte Carlo variation
// sweep, the red-black nodal solver and the full triage evaluate_all path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"
#include "device/fefet.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

namespace xlds {
namespace {

/// Restores the pool to the environment default after each test so thread
/// overrides never leak across test cases.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

// ---- chunking / edge cases ---------------------------------------------------

TEST_F(ParallelTest, EmptyRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  parallel_for(0, 4, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE((parallel_map<int>(0, [](std::size_t i) { return static_cast<int>(i); }).empty()));
  EXPECT_EQ(parallel_sum(0, 4, [](std::size_t) { return 1.0; }), 0.0);
}

TEST_F(ParallelTest, RaggedLastChunkCoversWholeRange) {
  // n = 10, chunk = 4 -> chunks [0,4), [4,8), [8,10): boundaries are a pure
  // function of (n, chunk), never the thread count.
  std::vector<int> hits(10, 0);
  std::vector<std::size_t> chunk_of(10, 99);
  parallel_for(10, 4, [&](std::size_t begin, std::size_t end, std::size_t ci) {
    for (std::size_t i = begin; i < end; ++i) {
      ++hits[i];
      chunk_of[i] = ci;
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  const std::vector<std::size_t> expect = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2};
  EXPECT_EQ(chunk_of, expect);
}

TEST_F(ParallelTest, ChunkZeroSelectsDefaultChunk) {
  EXPECT_GE(default_parallel_chunk(1), 1u);
  const std::size_t n = 1000;
  const std::size_t chunk = default_parallel_chunk(n);
  std::vector<std::size_t> seen;
  parallel_for(n, 0, [&](std::size_t begin, std::size_t, std::size_t ci) {
    if (ci == 1) {
      // Chunk 1 must start exactly where the default chunk size says.
      EXPECT_EQ(begin, chunk);
    }
    (void)begin;
  });
  (void)seen;
}

TEST_F(ParallelTest, MapPreservesIndexOrder) {
  set_parallel_threads(8);
  const auto out = parallel_map<int>(257, [](std::size_t i) { return static_cast<int>(i * 3); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i * 3));
}

TEST_F(ParallelTest, SetThreadsRoundTrip) {
  set_parallel_threads(3);
  EXPECT_EQ(parallel_thread_count(), 3u);
  set_parallel_threads(1);
  EXPECT_EQ(parallel_thread_count(), 1u);
}

// ---- exception propagation ---------------------------------------------------

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  set_parallel_threads(4);
  EXPECT_THROW(
      parallel_for(100, 5,
                   [&](std::size_t begin, std::size_t, std::size_t) {
                     if (begin == 50) throw std::runtime_error("chunk failure");
                   }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  EXPECT_EQ(parallel_sum(10, 3, [](std::size_t) { return 1.0; }), 10.0);
}

// ---- determinism: Monte Carlo variation sweep --------------------------------

/// The fig3g/fig2-style chunked MC sweep: per-chunk forked RNG streams,
/// per-chunk error counts combined in chunk order.
std::vector<std::size_t> mc_sweep_chunk_errors() {
  device::FeFetParams params;
  params.bits = 3;
  params.sigma_program = 0.094;
  const device::FeFetModel model(params);
  const int mid = params.levels() / 2;
  constexpr std::size_t kTrials = 20000;
  constexpr std::size_t kChunk = 500;
  Rng rng(7);
  std::vector<std::size_t> chunk_errors((kTrials + kChunk - 1) / kChunk, 0);
  parallel_for_rng(rng, kTrials, kChunk,
                   [&](Rng& trial_rng, std::size_t begin, std::size_t end, std::size_t ci) {
                     std::size_t errors = 0;
                     for (std::size_t t = begin; t < end; ++t)
                       if (model.readback_level(model.program_vth(mid, trial_rng)) != mid)
                         ++errors;
                     chunk_errors[ci] = errors;
                   });
  return chunk_errors;
}

TEST_F(ParallelTest, McSweepBitIdenticalAcrossThreadCounts) {
  set_parallel_threads(1);
  const auto serial = mc_sweep_chunk_errors();
  set_parallel_threads(8);
  const auto parallel = mc_sweep_chunk_errors();
  // Not just the same total: every per-chunk count matches, because each
  // chunk's RNG stream is a pure function of its chunk index.
  EXPECT_EQ(serial, parallel);
  const std::size_t total = std::accumulate(serial.begin(), serial.end(), std::size_t{0});
  EXPECT_GT(total, 0u);  // 3-bit cells at 94 mV do see level errors
}

// ---- determinism: red-black nodal solver -------------------------------------

TEST_F(ParallelTest, NodalSolveBitIdenticalAcrossThreadCounts) {
  const auto solve = [] {
    xbar::CrossbarConfig cfg;
    cfg.rows = 48;
    cfg.cols = 48;
    cfg.apply_variation = false;
    cfg.read_noise_rel = 0.0;
    cfg.ir_drop = xbar::IrDropMode::kNodal;
    // Pin the iterative path: this test is about the Gauss-Seidel sweep
    // (the direct solver answers in 0 iterations and is covered by
    // test_nodal's thread-invariance cases).
    cfg.nodal_direct = false;
    Rng rng(11);
    xbar::Crossbar xb(cfg, rng);
    MatrixD g(48, 48, cfg.rram.g_min);
    Rng fill(12);
    for (double& v : g.data())
      if (fill.bernoulli(0.5)) v = cfg.rram.g_max;
    xb.program_conductances(g);
    const std::vector<double> ones(48, 1.0);
    xbar::SolveStatus status;
    auto currents = xb.column_currents(ones, status);
    return std::make_pair(std::move(currents), status.iterations);
  };
  set_parallel_threads(1);
  const auto [currents_1t, iters_1t] = solve();
  set_parallel_threads(8);
  const auto [currents_8t, iters_8t] = solve();
  ASSERT_EQ(currents_1t.size(), currents_8t.size());
  for (std::size_t c = 0; c < currents_1t.size(); ++c) {
    // Bitwise equality — the red-black sweep order is fixed, so the fixed
    // point and the path to it are thread-count independent.
    EXPECT_EQ(currents_1t[c], currents_8t[c]) << "column " << c;
  }
  EXPECT_EQ(iters_1t, iters_8t);
  EXPECT_GT(iters_1t, 0u);
}

// ---- determinism: full triage sweep (enumerate + evaluate_all) ---------------

bool fom_equal(const core::Fom& a, const core::Fom& b) {
  return a.latency == b.latency && a.energy == b.energy && a.area_mm2 == b.area_mm2 &&
         a.accuracy == b.accuracy && a.feasible == b.feasible && a.note == b.note;
}

TEST_F(ParallelTest, EvaluateAllBitIdenticalAcrossThreadCountsAndMatchesSerial) {
  const auto points = core::enumerate_design_space("isolet-like", /*include_culled=*/true);
  ASSERT_FALSE(points.empty());
  const auto profile = core::profile_for("isolet-like");
  const core::Evaluator ev;

  set_parallel_threads(1);
  const auto foms_1t = ev.evaluate_all(points, profile);
  set_parallel_threads(8);
  const auto foms_8t = ev.evaluate_all(points, profile);

  ASSERT_EQ(foms_1t.size(), points.size());
  ASSERT_EQ(foms_8t.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(fom_equal(foms_1t[i], foms_8t[i])) << "point " << i;
    // The batched path must agree with the one-point-at-a-time API.
    if (points[i].culled_because) {
      EXPECT_FALSE(foms_1t[i].feasible);
      EXPECT_EQ(foms_1t[i].note, *points[i].culled_because);
    } else {
      EXPECT_TRUE(fom_equal(foms_1t[i], ev.evaluate(points[i].point, profile)))
          << "point " << i;
    }
  }
}

// ---- memo caches -------------------------------------------------------------

TEST_F(ParallelTest, EvaluationCachesAreHitDuringSweeps) {
  core::clear_evaluation_caches();
  const auto points = core::enumerate_design_space("isolet-like", /*include_culled=*/true);
  const auto profile = core::profile_for("isolet-like");
  const core::Evaluator ev;
  const auto first = ev.evaluate_all(points, profile);

  const auto stats = core::evaluation_cache_stats();
  // Many in-memory points share the handful of device kinds / CAM specs, so
  // the sweep must hit both caches well short of its lookup count.
  EXPECT_GT(stats.tile_cost_lookups, 0u);
  EXPECT_GT(stats.tile_cost_hits, 0u);
  EXPECT_LT(stats.tile_cost_hits, stats.tile_cost_lookups);
  EXPECT_GT(stats.cam_fom_lookups, 0u);
  EXPECT_GT(stats.cam_fom_hits, 0u);
  EXPECT_LT(stats.cam_fom_hits, stats.cam_fom_lookups);

  // A second identical sweep is a pure cache replay — and caching must not
  // change any result.
  const auto again = ev.evaluate_all(points, profile);
  const auto stats2 = core::evaluation_cache_stats();
  EXPECT_EQ(stats2.tile_cost_hits - stats.tile_cost_hits,
            stats2.tile_cost_lookups - stats.tile_cost_lookups);
  EXPECT_EQ(stats2.cam_fom_hits - stats.cam_fom_hits,
            stats2.cam_fom_lookups - stats.cam_fom_lookups);
  ASSERT_EQ(first.size(), again.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_TRUE(fom_equal(first[i], again[i])) << "point " << i;
}

}  // namespace
}  // namespace xlds
