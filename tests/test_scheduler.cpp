// Tests for the work-stealing task scheduler: nested-parallel bit-equality
// across thread counts and scheduler modes, first-by-index exception
// determinism, steal-heavy nested stress (the TSan workhorse), cooperative
// counters, and the per-call minimum-work floor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/counters.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace xlds {
namespace {

/// Restores pool width and scheduler mode after each test so overrides never
/// leak across test cases.
class SchedulerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_parallel_scheduler(SchedulerMode::kWorkStealing);
    set_parallel_threads(0);
  }
};

/// Outer DSE-style batch x inner MC-style chunked RNG sweep: the nested shape
/// whose result must be a pure function of (points, trials) — never of the
/// thread count or scheduler placement.
std::vector<double> nested_sweep(std::size_t points, std::size_t trials) {
  return parallel_map<double>(points, [&](std::size_t p) {
    Rng rng(1234 + p);
    const std::size_t chunk = 64;
    const std::size_t n_chunks = (trials + chunk - 1) / chunk;
    std::vector<double> partial(n_chunks, 0.0);
    parallel_for_rng(rng, trials, chunk,
                     [&](Rng& r, std::size_t begin, std::size_t end, std::size_t ci) {
                       double s = 0.0;
                       for (std::size_t i = begin; i < end; ++i) s += r.normal();
                       partial[ci] = s;
                     });
    double acc = 0.0;
    for (const double s : partial) acc += s;  // chunk-index order
    return acc;
  });
}

TEST_F(SchedulerTest, NestedSweepBitIdenticalAcrossThreadsAndModes) {
  const std::size_t points = 6, trials = 2000;
  set_parallel_threads(1);
  set_parallel_scheduler(SchedulerMode::kStatic);
  const std::vector<double> serial = nested_sweep(points, trials);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{16}}) {
    for (const SchedulerMode mode : {SchedulerMode::kStatic, SchedulerMode::kWorkStealing}) {
      set_parallel_threads(threads);
      set_parallel_scheduler(mode);
      const std::vector<double> got = nested_sweep(points, trials);
      ASSERT_EQ(got.size(), serial.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], serial[i]) << "point " << i << " threads " << threads << " mode "
                                     << (mode == SchedulerMode::kStatic ? "static" : "steal");
    }
  }
}

TEST_F(SchedulerTest, ExceptionPropagatesFirstByIndexNotFirstByTime) {
  set_parallel_threads(8);
  for (const SchedulerMode mode : {SchedulerMode::kStatic, SchedulerMode::kWorkStealing}) {
    set_parallel_scheduler(mode);
    for (int rep = 0; rep < 20; ++rep) {
      try {
        // Chunk 11 delays before throwing while 37 and 53 throw immediately:
        // a first-by-time scheduler would usually surface 37 or 53 here.
        parallel_for(100, 1, [&](std::size_t begin, std::size_t, std::size_t ci) {
          if (ci == 11) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            throw std::runtime_error("11");
          }
          if (ci == 37 || ci == 53) throw std::runtime_error(std::to_string(ci));
          (void)begin;
        });
        FAIL() << "expected an exception";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "11");
      }
    }
  }
  // The pool stays usable after failures.
  const std::vector<int> ok =
      parallel_map<int>(32, [](std::size_t i) { return static_cast<int>(i) * 3; });
  for (std::size_t i = 0; i < ok.size(); ++i) EXPECT_EQ(ok[i], static_cast<int>(i) * 3);
}

TEST_F(SchedulerTest, NestedExceptionPropagatesThroughCooperativeJoin) {
  set_parallel_threads(8);
  set_parallel_scheduler(SchedulerMode::kWorkStealing);
  try {
    parallel_for(8, 1, [&](std::size_t begin, std::size_t, std::size_t) {
      parallel_for(16, 1, [&](std::size_t b2, std::size_t, std::size_t) {
        if (begin == 2 && b2 == 5) throw std::runtime_error("inner");
      });
    });
    FAIL() << "expected the inner exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "inner");
  }
  EXPECT_EQ(parallel_sum(64, 4, [](std::size_t) { return 1.0; }), 64.0);
}

TEST_F(SchedulerTest, StealHeavyNestedStressIsRaceFreeAndCooperative) {
  set_parallel_threads(8);
  set_parallel_scheduler(SchedulerMode::kWorkStealing);
  const core::Profiler::SchedCounts before = core::Profiler::sched();
  constexpr std::size_t kOuter = 32, kInner = 16, kReps = 10;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    std::vector<std::vector<int>> slots(kOuter, std::vector<int>(kInner, -1));
    std::atomic<std::size_t> executed{0};
    parallel_for(kOuter, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t o = begin; o < end; ++o) {
        parallel_for(kInner, 1, [&](std::size_t b2, std::size_t e2, std::size_t) {
          for (std::size_t i = b2; i < e2; ++i) {
            slots[o][i] = static_cast<int>(o * kInner + i);
            executed.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
    });
    EXPECT_EQ(executed.load(), kOuter * kInner);
    for (std::size_t o = 0; o < kOuter; ++o)
      for (std::size_t i = 0; i < kInner; ++i)
        EXPECT_EQ(slots[o][i], static_cast<int>(o * kInner + i));
  }
  const core::Profiler::SchedCounts after = core::Profiler::sched();
  // Every inner call submits to the shared deques instead of inlining.
  EXPECT_GE(after.nested_cooperative - before.nested_cooperative, kOuter * kReps);
  EXPECT_EQ(after.nested_inlined, before.nested_inlined);
  EXPECT_GT(after.tasks + after.stolen_tasks, before.tasks + before.stolen_tasks);
}

TEST_F(SchedulerTest, StaticModeInlinesNestedCalls) {
  set_parallel_threads(8);
  set_parallel_scheduler(SchedulerMode::kStatic);
  const core::Profiler::SchedCounts before = core::Profiler::sched();
  parallel_for(8, 1, [&](std::size_t, std::size_t, std::size_t) {
    parallel_for(16, 1, [](std::size_t, std::size_t, std::size_t) {});
  });
  const core::Profiler::SchedCounts after = core::Profiler::sched();
  EXPECT_GE(after.nested_inlined - before.nested_inlined, 8u);
  EXPECT_EQ(after.nested_cooperative, before.nested_cooperative);
}

TEST_F(SchedulerTest, MinWorkFloorRunsTinyBatchesInline) {
  set_parallel_threads(8);
  const core::Profiler::SchedCounts before = core::Profiler::sched();
  std::vector<int> hits(100, 0);
  parallel_for(
      100, 10,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      },
      /*min_items_per_task=*/1000);
  const core::Profiler::SchedCounts after = core::Profiler::sched();
  for (const int h : hits) EXPECT_EQ(h, 1);
  // 100 items under a 1000-item floor -> one task -> no pool dispatch.
  EXPECT_EQ(after.jobs, before.jobs);
  EXPECT_GE(after.inline_jobs - before.inline_jobs, 1u);
}

TEST_F(SchedulerTest, ParallelSumBitIdenticalAcrossModes) {
  const auto run = [] {
    return parallel_sum(10000, 128, [](std::size_t i) {
      return std::sin(static_cast<double>(i) * 0.37) / (1.0 + static_cast<double>(i % 97));
    });
  };
  set_parallel_threads(1);
  const double serial = run();
  set_parallel_threads(8);
  set_parallel_scheduler(SchedulerMode::kStatic);
  const double st = run();
  set_parallel_scheduler(SchedulerMode::kWorkStealing);
  const double ws = run();
  EXPECT_EQ(serial, st);
  EXPECT_EQ(serial, ws);
}

}  // namespace
}  // namespace xlds
