// Fixture generator for the legacy-journal regression test.
//
//   make_legacy_fixture <output path>
//
// Runs the exploration described by testfix::legacy_fixture_config() with a
// journal, then rewrites that journal's bytes in the retired v1 (3-tier)
// layout and writes them to <output path>.  The checked-in copy lives at
// tests/data/legacy_3tier.xjl; regenerate it with this tool only when the
// fixture *job* changes — regenerating because FOM values drifted would
// defeat the point of the regression test, which is that journals written by
// old builds keep resuming bit-identically.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "legacy_fixture.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_legacy_fixture <output path>\n";
    return 2;
  }
  const std::string out_path = argv[1];
  const std::string tmp = out_path + ".v2.tmp";
  std::remove(tmp.c_str());

  try {
    xlds::dse::EngineConfig config = xlds::dse::testfix::legacy_fixture_config();
    config.journal_path = tmp;
    const xlds::dse::ExplorationResult result = xlds::dse::explore(config);

    std::string v2;
    {
      std::ifstream in(tmp, std::ios::binary);
      XLDS_REQUIRE_MSG(in.is_open(), "cannot read generated journal '" << tmp << "'");
      v2.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    const std::string v1 = xlds::dse::testfix::downgrade_journal_to_v1(v2);
    {
      std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
      XLDS_REQUIRE_MSG(out.is_open(), "cannot write fixture '" << out_path << "'");
      out.write(v1.data(), static_cast<std::streamsize>(v1.size()));
      XLDS_REQUIRE_MSG(out.good(), "fixture write to '" << out_path << "' failed");
    }
    std::remove(tmp.c_str());

    std::cout << "wrote " << out_path << ": " << result.stats.charges
              << " records (v1 layout), job hash " << std::hex << result.job_hash
              << std::dec << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::remove(tmp.c_str());
    std::cerr << "make_legacy_fixture: error: " << e.what() << "\n";
    return 1;
  }
}
