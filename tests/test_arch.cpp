// Unit tests for the platform models and the HDC/MANN architecture mappings.
#include <gtest/gtest.h>

#include "arch/hdc_mapping.hpp"
#include "arch/mann_mapping.hpp"
#include "arch/platform.hpp"
#include "arch/soc.hpp"
#include "util/error.hpp"

namespace xlds::arch {
namespace {

// ---- kernel model ----------------------------------------------------------

TEST(Platform, ComputeBoundVsMemoryBound) {
  const Platform& p = gpu();
  // Huge MACs, tiny bytes: compute bound; scale MACs -> scale latency.
  const KernelCost c1 = dense_kernel(p, 1'000'000'000, 64);
  const KernelCost c2 = dense_kernel(p, 2'000'000'000, 64);
  EXPECT_NEAR((c2.latency - p.launch_overhead) / (c1.latency - p.launch_overhead), 2.0, 0.01);
  // Tiny MACs, huge bytes: memory bound.
  const KernelCost m1 = dense_kernel(p, 64, 1'000'000'000);
  const KernelCost m2 = dense_kernel(p, 64, 2'000'000'000);
  EXPECT_NEAR((m2.latency - p.launch_overhead) / (m1.latency - p.launch_overhead), 2.0, 0.01);
}

TEST(Platform, LaunchOverheadFloorsSmallKernels) {
  const Platform& p = gpu();
  const KernelCost c = dense_kernel(p, 10, 10);
  EXPECT_GE(c.latency, p.launch_overhead);
}

TEST(Platform, HostTransferLatencyAndBandwidth) {
  const Platform& p = gpu();
  const KernelCost small = host_transfer(p, 64);
  const KernelCost large = host_transfer(p, 1'600'000'000);
  EXPECT_NEAR(small.latency, p.link_latency, 1e-6);
  EXPECT_NEAR(large.latency, 0.1 + p.link_latency, 0.01);
}

TEST(Platform, PresetsAreOrdered) {
  EXPECT_GT(tpu().peak_macs_per_s, gpu().peak_macs_per_s);
  EXPECT_GT(gpu().peak_macs_per_s, cpu().peak_macs_per_s);
  EXPECT_GT(gpu().mem_bandwidth, edge_gpu().mem_bandwidth);
}

// ---- HDC mapping -------------------------------------------------------------

HdcWorkload hdc_workload() {
  HdcWorkload w;
  w.input_dim = 617;
  w.hv_dim = 4096;
  w.am_entries = 520;
  w.elem_bytes = 1;
  return w;
}

TEST(HdcMapping, BatchAmortisesPerQueryLatency) {
  const HdcWorkload w = hdc_workload();
  const KernelCost b1 = hdc_gpu_inference(gpu(), w, 1);
  const KernelCost b1000 = hdc_gpu_inference(gpu(), w, 1000);
  EXPECT_LT(b1000.latency / 1000.0, b1.latency);  // Fig. 3H: 1000-query bar
  EXPECT_GT(b1000.latency, b1.latency);           // but total time grows
}

TEST(HdcMapping, HybridBeatsGpuAtLargeBatch) {
  const HdcWorkload w = hdc_workload();
  const KernelCost gpu_only = hdc_gpu_inference(gpu(), w, 1000);
  const KernelCost hybrid = hdc_hybrid_inference(tpu(), gpu(), w, 1000);
  EXPECT_LT(hybrid.latency, gpu_only.latency);
}

TEST(HdcMapping, HybridHopHurtsAtBatchOne) {
  const HdcWorkload w = hdc_workload();
  const KernelCost gpu_only = hdc_gpu_inference(gpu(), w, 1);
  const KernelCost hybrid = hdc_hybrid_inference(tpu(), gpu(), w, 1);
  // The extra device-to-device hop cannot be amortised by one query.
  EXPECT_GT(hybrid.latency, 0.8 * gpu_only.latency);
}

TEST(HdcMapping, CamPipelinePipelinesBatch) {
  xbar::MvmCost encode{200e-9, 1e-9};
  cam::SearchCost search{100e-9, 2e-9};
  const KernelCost b1 = hdc_cam_inference(encode, search, 1);
  const KernelCost b10 = hdc_cam_inference(encode, search, 10);
  EXPECT_NEAR(b1.latency, 300e-9, 1e-12);
  // 9 extra queries at the 200 ns beat.
  EXPECT_NEAR(b10.latency, 300e-9 + 9 * 200e-9, 1e-12);
  EXPECT_NEAR(b10.energy, 10 * b1.energy, 1e-15);
}

TEST(HdcMapping, CamOrdersOfMagnitudeFasterThanGpuAtBatchOne) {
  // Fig. 3H's headline: the CAM pipeline dodges transfer + launch overheads.
  const HdcWorkload w = hdc_workload();
  const KernelCost gpu_b1 = hdc_gpu_inference(gpu(), w, 1);
  xbar::MvmCost encode{200e-9, 1e-9};
  cam::SearchCost search{100e-9, 2e-9};
  const KernelCost cam_b1 = hdc_cam_inference(encode, search, 1);
  EXPECT_GT(gpu_b1.latency / cam_b1.latency, 10.0);
}

TEST(HdcMapping, SearchFractionSubstantialAndGrowsWithAm) {
  HdcWorkload w = hdc_workload();
  const double f_small = gpu_search_fraction(gpu(), w, 1);
  w.am_entries = 5000;
  const double f_large = gpu_search_fraction(gpu(), w, 1);
  EXPECT_GT(f_small, 0.1);
  EXPECT_LT(f_small, 0.95);
  EXPECT_GT(f_large, f_small);
}

TEST(HdcMapping, NvmBackedRemovesWeightStreaming) {
  HdcWorkload w = hdc_workload();
  // On an edge platform whose DRAM bus is the bottleneck, an on-chip NVM
  // bank several times faster than DRAM must win at batch 1.
  const KernelCost dram = hdc_gpu_inference(edge_gpu(), w, 1);
  const KernelCost nvm =
      hdc_nvm_backed_inference(edge_gpu(), w, 1, /*bw=*/300e9, /*epb=*/5e-12);
  EXPECT_LT(nvm.latency, dram.latency);
  // A bank *slower* than the platform's own DRAM cannot help.
  const KernelCost slow_nvm =
      hdc_nvm_backed_inference(edge_gpu(), w, 1, /*bw=*/5e9, /*epb=*/5e-12);
  EXPECT_GT(slow_nvm.latency, nvm.latency);
  EXPECT_THROW(hdc_nvm_backed_inference(edge_gpu(), w, 1, 0.0, 1e-12), PreconditionError);
}

TEST(HdcMapping, MlpBaselinePositive) {
  const KernelCost c = mlp_gpu_inference(gpu(), 500'000, 500'000, 1);
  EXPECT_GT(c.latency, 0.0);
  EXPECT_GT(c.energy, 0.0);
}

// ---- MANN mapping -----------------------------------------------------------

TEST(MannMapping, GpuInferencePositiveAndBatchAmortises) {
  MannWorkload w;
  const KernelCost b1 = mann_gpu_inference(gpu(), w, 1);
  const KernelCost b100 = mann_gpu_inference(gpu(), w, 100);
  EXPECT_GT(b1.latency, 0.0);
  EXPECT_LT(b100.latency / 100.0, b1.latency);
}

TEST(MannMapping, RramPipelineScalesWithLayers) {
  xbar::MvmCost stage{50e-9, 0.5e-9};
  xbar::MvmCost hash{30e-9, 0.2e-9};
  cam::SearchCost search{20e-9, 0.1e-9};
  const KernelCost l4 = mann_rram_inference(stage, 4, hash, search, 1);
  const KernelCost l8 = mann_rram_inference(stage, 8, hash, search, 1);
  EXPECT_NEAR(l8.latency - l4.latency, 4 * 50e-9, 1e-12);
}

TEST(MannMapping, RramBeatsGpuAtBatchOne) {
  MannWorkload w;
  const KernelCost digital = mann_gpu_inference(gpu(), w, 1);
  xbar::MvmCost stage{50e-9, 0.5e-9};
  xbar::MvmCost hash{30e-9, 0.2e-9};
  cam::SearchCost search{20e-9, 0.1e-9};
  const KernelCost rram = mann_rram_inference(stage, 6, hash, search, 1);
  EXPECT_GT(digital.latency / rram.latency, 10.0);
}

TEST(MannMapping, ZeroBatchRejected) {
  MannWorkload w;
  EXPECT_THROW(mann_gpu_inference(gpu(), w, 0), PreconditionError);
}

// ---- SoC template (open-hardware platform, Sec. V) ---------------------------

TEST(Soc, BareTemplateFitsWithUnitSpeedup) {
  SocInstance soc(SocTemplate::ultra_low_power());
  const SocReport r = soc.integrate(0.8);
  EXPECT_TRUE(r.fits);
  EXPECT_DOUBLE_EQ(r.application_speedup, 1.0);  // nothing to offload to
  EXPECT_EQ(r.bus_utilisation, 0.0);
}

TEST(Soc, AcceleratorGivesAmdahlSpeedup) {
  SocInstance soc(SocTemplate::ultra_low_power());
  soc.attach(crossbar_macro_ip());
  const SocReport r = soc.integrate(0.9);
  ASSERT_TRUE(r.fits) << r.violation;
  // Amdahl with f = 0.9, s = 18, contention = max(1, 0.8/1.6) = 1.
  EXPECT_NEAR(r.application_speedup, 1.0 / (0.1 + 0.9 / 18.0), 1e-9);
  EXPECT_LT(r.application_speedup, 18.0);
}

TEST(Soc, AreaBudgetViolationReported) {
  SocInstance soc(SocTemplate::ultra_low_power());
  for (int i = 0; i < 4; ++i) soc.attach(cgra_ip());  // 4 x 0.6 mm^2 on a 2.5 mm^2 budget
  const SocReport r = soc.integrate(0.5);
  EXPECT_FALSE(r.fits);
  EXPECT_NE(r.violation.find("area"), std::string::npos);
}

TEST(Soc, BusContentionDegradesSpeedup) {
  SocTemplate narrow = SocTemplate::ultra_low_power();
  narrow.bus_bandwidth = 0.2e9;  // crossbar demands 0.8 GB/s -> 4x contention
  SocInstance soc(narrow);
  soc.attach(crossbar_macro_ip());
  const SocReport congested = soc.integrate(0.9);
  ASSERT_TRUE(congested.fits);

  SocInstance wide(SocTemplate::ultra_low_power());
  wide.attach(crossbar_macro_ip());
  EXPECT_LT(congested.application_speedup, wide.integrate(0.9).application_speedup);
  EXPECT_GT(congested.bus_utilisation, 1.0);
}

TEST(Soc, OffloadFractionBounds) {
  SocInstance soc(SocTemplate::ultra_low_power());
  soc.attach(in_sram_compute_ip());
  EXPECT_THROW(soc.integrate(-0.1), PreconditionError);
  EXPECT_THROW(soc.integrate(1.1), PreconditionError);
  const SocReport all = soc.integrate(1.0);
  EXPECT_NEAR(all.application_speedup, 4.0, 1e-9);  // pure kernel speedup
}

TEST(Soc, IpPresetsAreOrdered) {
  // The crossbar macro is the aggressive option; in-SRAM compute the
  // bus-frugal one.
  EXPECT_GT(crossbar_macro_ip().kernel_speedup, cgra_ip().kernel_speedup);
  EXPECT_LT(in_sram_compute_ip().bus_demand, cgra_ip().bus_demand);
}

}  // namespace
}  // namespace xlds::arch
