// Unit tests for the MANN module: LSH/TLSH (software + crossbar) and the
// few-shot pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "mann/lsh.hpp"
#include "mann/mann.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "workload/fewshot.hpp"

namespace xlds::mann {
namespace {

std::vector<double> random_unit_vector(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  double norm = 0.0;
  for (double& x : v) {
    x = std::abs(rng.normal());  // feature vectors are post-ReLU: non-negative
    norm += x * x;
  }
  norm = std::sqrt(norm);
  for (double& x : v) x /= norm;
  return v;
}

double cosine(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return dot / std::sqrt(na * nb);
}

// ---- signature helpers ------------------------------------------------------

TEST(Signature, DistanceIgnoresDontCare) {
  const Signature a = {1, 0, cam::kDontCare, 1};
  const Signature b = {0, 0, 1, cam::kDontCare};
  EXPECT_EQ(signature_distance(a, b), 1u);
  EXPECT_DOUBLE_EQ(dont_care_fraction(a), 0.25);
}

TEST(Signature, MismatchedLengthThrows) {
  EXPECT_THROW(signature_distance({1, 0}, {1}), PreconditionError);
}

// ---- SoftwareLsh -----------------------------------------------------------

TEST(SoftwareLsh, SameInputSameHash) {
  Rng rng(1);
  SoftwareLsh lsh(32, 64, rng);
  Rng data(2);
  const auto x = random_unit_vector(32, data);
  EXPECT_EQ(lsh.hash(x), lsh.hash(x));
}

TEST(SoftwareLsh, HammingTracksAngle) {
  Rng rng(3);
  SoftwareLsh lsh(64, 256, rng);
  Rng data(4);
  const auto a = random_unit_vector(64, data);
  // near: small perturbation; far: independent vector.
  std::vector<double> near = a;
  for (double& v : near) v += 0.05 * std::abs(data.normal());
  const auto far = random_unit_vector(64, data);
  const auto ha = lsh.hash(a);
  EXPECT_LT(signature_distance(ha, lsh.hash(near)), signature_distance(ha, lsh.hash(far)));
}

TEST(SoftwareLsh, CorrelationWithCosineDistance) {
  // Fig. 4D's underlying property: hashed Hamming distance correlates with
  // cosine distance across random pairs.
  Rng rng(5);
  SoftwareLsh lsh(64, 512, rng);
  Rng data(6);
  std::vector<double> cos_d, ham_d;
  for (int i = 0; i < 60; ++i) {
    const auto a = random_unit_vector(64, data);
    auto b = a;
    const double blend = data.uniform();
    const auto r = random_unit_vector(64, data);
    for (std::size_t k = 0; k < b.size(); ++k) b[k] = (1 - blend) * b[k] + blend * r[k];
    cos_d.push_back(1.0 - cosine(a, b));
    ham_d.push_back(static_cast<double>(signature_distance(lsh.hash(a), lsh.hash(b))));
  }
  EXPECT_GT(pearson(cos_d, ham_d), 0.85);
}

TEST(SoftwareLsh, TernaryMarginGrowsDontCares) {
  Rng rng(7);
  SoftwareLsh lsh(32, 256, rng);
  Rng data(8);
  const auto x = random_unit_vector(32, data);
  const double f_small = dont_care_fraction(lsh.hash_ternary(x, 0.1));
  const double f_large = dont_care_fraction(lsh.hash_ternary(x, 0.8));
  EXPECT_LT(f_small, f_large);
  EXPECT_EQ(dont_care_fraction(lsh.hash_ternary(x, 0.0)), 0.0);
}

// ---- CrossbarLsh -----------------------------------------------------------

xbar::CrossbarConfig hash_xbar_config(std::size_t rows, std::size_t bits) {
  xbar::CrossbarConfig cfg;
  cfg.rows = rows;
  cfg.cols = 2 * bits;
  cfg.read_noise_rel = 0.0;  // deterministic for unit tests
  cfg.ir_drop = xbar::IrDropMode::kNone;
  return cfg;
}

TEST(CrossbarLsh, DeterministicWithoutNoise) {
  Rng rng(9);
  CrossbarLsh lsh(hash_xbar_config(32, 64), 64, rng);
  Rng data(10);
  const auto x = random_unit_vector(32, data);
  EXPECT_EQ(lsh.hash(x), lsh.hash(x));
}

TEST(CrossbarLsh, PreservesLocality) {
  Rng rng(11);
  CrossbarLsh lsh(hash_xbar_config(64, 128), 128, rng);
  Rng data(12);
  const auto a = random_unit_vector(64, data);
  std::vector<double> near = a;
  for (double& v : near) v = std::min(1.0, v + 0.02);
  const auto far = random_unit_vector(64, data);
  const auto ha = lsh.hash(a);
  EXPECT_LE(signature_distance(ha, lsh.hash(near)), signature_distance(ha, lsh.hash(far)));
}

TEST(CrossbarLsh, InsufficientColumnsThrows) {
  Rng rng(13);
  EXPECT_THROW(CrossbarLsh(hash_xbar_config(32, 16), 32, rng), PreconditionError);
}

TEST(CrossbarLsh, TernaryThresholdMarksNearPlaneBits) {
  Rng rng(14);
  CrossbarLsh lsh(hash_xbar_config(32, 128), 128, rng);
  Rng data(15);
  const auto x = random_unit_vector(32, data);
  const double f0 = dont_care_fraction(lsh.hash_ternary(x, 0.0));
  const double f1 = dont_care_fraction(lsh.hash_ternary(x, 0.5));
  EXPECT_EQ(f0, 0.0);
  EXPECT_GT(f1, 0.05);
  EXPECT_LT(f1, 0.6);
}

TEST(CrossbarLsh, FixedCountTernaryMasksExactlyK) {
  Rng rng(50);
  CrossbarLsh lsh(hash_xbar_config(32, 128), 128, rng);
  Rng data(51);
  const auto x = random_unit_vector(32, data);
  for (std::size_t k : {0u, 16u, 64u}) {
    const Signature s = lsh.hash_ternary_fixed(x, k);
    std::size_t masked = 0;
    for (int b : s)
      if (b == cam::kDontCare) ++masked;
    EXPECT_EQ(masked, k);
  }
  EXPECT_THROW(lsh.hash_ternary_fixed(x, 128), PreconditionError);
}

TEST(CrossbarLsh, FixedCountMasksTheSmallestMagnitudes) {
  Rng rng(52);
  CrossbarLsh lsh(hash_xbar_config(32, 64), 64, rng);
  Rng data(53);
  const auto x = random_unit_vector(32, data);
  const auto proj = lsh.project(x);
  const Signature s = lsh.hash_ternary_fixed(x, 8);
  double max_masked = 0.0, min_kept = 1e300;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == cam::kDontCare)
      max_masked = std::max(max_masked, std::abs(proj[i]));
    else
      min_kept = std::min(min_kept, std::abs(proj[i]));
  }
  EXPECT_LE(max_masked, min_kept);
}

TEST(Lsh, CenteringImprovesAngularResolution) {
  // Post-ReLU-style vectors cluster in the positive orthant; centering the
  // projection must improve the hash's correlation with cosine distance.
  Rng rng(54);
  SoftwareLsh plain(48, 512, rng);
  Rng rng2(54);
  SoftwareLsh centred(48, 512, rng2);
  centred.calibrate_centering();
  ASSERT_TRUE(centred.centering_calibrated());

  Rng data(55);
  std::vector<double> cos_d, d_plain, d_centred;
  auto cosine = [](const std::vector<double>& a, const std::vector<double>& b) {
    double dot = 0, na = 0, nb = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      dot += a[i] * b[i];
      na += a[i] * a[i];
      nb += b[i] * b[i];
    }
    return 1.0 - dot / std::sqrt(na * nb);
  };
  // Strongly clustered population (a dominant common direction, like CNN
  // embeddings sharing activation statistics): this is where plain sign
  // hashing loses angular resolution.
  auto clustered = [&]() {
    std::vector<double> v(48);
    for (std::size_t i = 0; i < 48; ++i) v[i] = 0.8 + 0.2 * std::abs(data.normal());
    return v;
  };
  for (int p = 0; p < 80; ++p) {
    const auto a = clustered();
    auto b = a;
    const double blend = data.uniform();
    const auto r = clustered();
    for (std::size_t k = 0; k < b.size(); ++k) b[k] = (1 - blend) * b[k] + blend * r[k];
    cos_d.push_back(cosine(a, b));
    d_plain.push_back(static_cast<double>(signature_distance(plain.hash(a), plain.hash(b))));
    d_centred.push_back(
        static_cast<double>(signature_distance(centred.hash(a), centred.hash(b))));
  }
  EXPECT_GT(pearson(cos_d, d_centred), pearson(cos_d, d_plain) + 0.02);
}

TEST(CrossbarLsh, CenteringZeroesTheOnesProjection) {
  Rng rng(56);
  CrossbarLsh lsh(hash_xbar_config(32, 64), 64, rng);
  lsh.calibrate_centering();
  // The all-ones input's centred projection must be ~0 (it IS the offset).
  const auto p = lsh.project(std::vector<double>(32, 1.0));
  for (double v : p) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(CrossbarLsh, RelaxationFlipsMostlyNearPlaneBits) {
  // The Fig. 4C mechanism: age the crossbar, see which signature bits flip,
  // and check flipped bits had smaller |projection| than stable bits.
  Rng rng(16);
  CrossbarLsh lsh(hash_xbar_config(64, 256), 256, rng);
  Rng data(17);
  const auto x = random_unit_vector(64, data);
  const auto before = lsh.hash(x);
  const auto proj = lsh.project(x);
  lsh.age(1.0e4);
  const auto after = lsh.hash(x);
  RunningStats flipped_mag, stable_mag;
  for (std::size_t i = 0; i < before.size(); ++i) {
    (before[i] != after[i] ? flipped_mag : stable_mag).add(std::abs(proj[i]));
  }
  if (flipped_mag.count() >= 5) {
    EXPECT_LT(flipped_mag.mean(), stable_mag.mean());
  }
}

// ---- pipeline ----------------------------------------------------------------

MannConfig pipeline_config(Backend backend) {
  MannConfig cfg;
  cfg.image_side = 16;
  cfg.embedding = 32;
  cfg.signature_bits = 64;
  cfg.backend = backend;
  cfg.hash_xbar = hash_xbar_config(32, 64);
  cfg.am.cols = 64;
  cfg.am.apply_variation = false;
  cfg.am.sense_noise_rel = 0.0;
  cfg.fefet_am.fefet.bits = 1;
  cfg.fefet_am.cols = 64;
  cfg.fefet_am.apply_variation = false;
  cfg.fefet_am.sense_noise_rel = 0.0;
  return cfg;
}

TEST(MannPipeline, PretrainReachesTrainingAccuracy) {
  workload::FewShotGenerator gen(workload::FewShotSpec{.image_side = 16, .n_classes = 40}, 18);
  Rng rng(19);
  MannPipeline pipe(pipeline_config(Backend::kSoftwareCosine), rng);
  const double acc = pipe.pretrain(gen, 8, 12, 12, 0.001);
  EXPECT_GT(acc, 0.7);
}

TEST(MannPipeline, EpisodeBeforePretrainThrows) {
  workload::FewShotGenerator gen(workload::FewShotSpec{.image_side = 16, .n_classes = 40}, 20);
  Rng rng(21);
  MannPipeline pipe(pipeline_config(Backend::kSoftwareCosine), rng);
  const auto ep = gen.sample_episode(5, 1, 2);
  EXPECT_THROW(pipe.run_episode(ep), PreconditionError);
}

class BackendSweep : public ::testing::TestWithParam<Backend> {};

TEST_P(BackendSweep, FewShotAboveChance) {
  workload::FewShotGenerator gen(workload::FewShotSpec{.image_side = 16, .n_classes = 40}, 22);
  Rng rng(23);
  MannPipeline pipe(pipeline_config(GetParam()), rng);
  pipe.pretrain(gen, 8, 12, 12, 0.001);
  const double acc = pipe.evaluate(gen, 6, 5, 1, 3);
  EXPECT_GT(acc, 0.35) << to_string(GetParam());  // chance = 0.2 for 5-way
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendSweep,
                         ::testing::Values(Backend::kSoftwareCosine, Backend::kSoftwareLsh,
                                           Backend::kRramLsh, Backend::kRramTlsh,
                                           Backend::kFeFetTlsh));

TEST(MannPipeline, TlshStoresDontCares) {
  workload::FewShotGenerator gen(workload::FewShotSpec{.image_side = 16, .n_classes = 40}, 24);
  Rng rng(25);
  MannConfig cfg = pipeline_config(Backend::kRramTlsh);
  cfg.tlsh_threshold = 0.4;
  MannPipeline pipe(cfg, rng);
  pipe.pretrain(gen, 8, 10, 10, 0.001);
  const EpisodeResult res = pipe.run_episode(gen.sample_episode(5, 1, 2));
  EXPECT_GT(res.mean_dont_care, 0.02);
}

TEST(MannPipeline, HardwareCostPositive) {
  Rng rng(26);
  MannPipeline pipe(pipeline_config(Backend::kRramTlsh), rng);
  const cam::SearchCost cost = pipe.hardware_query_cost(25);
  EXPECT_GT(cost.latency, 0.0);
  EXPECT_GT(cost.energy, 0.0);
  EXPECT_GT(pipe.cnn_macs(), 10000u);
}

TEST(MannPipeline, FeFetAmRequiresBinaryCells) {
  Rng rng(28);
  MannConfig cfg = pipeline_config(Backend::kFeFetTlsh);
  cfg.fefet_am.fefet.bits = 3;
  EXPECT_THROW(MannPipeline(cfg, rng), PreconditionError);
  cfg.fefet_am.fefet.bits = 1;
  cfg.fefet_am.cols = 32;  // != signature_bits
  EXPECT_THROW(MannPipeline(cfg, rng), PreconditionError);
}

TEST(MannPipeline, MismatchedAmWidthThrows) {
  Rng rng(27);
  MannConfig cfg = pipeline_config(Backend::kRramLsh);
  cfg.am.cols = 32;  // != signature_bits
  EXPECT_THROW(MannPipeline(cfg, rng), PreconditionError);
}

}  // namespace
}  // namespace xlds::mann
