// Tests for the learned tier-0 surrogate rung: the deterministic extra-trees
// forest, the DesignPoint/Fom model layer, the engine's uncertainty-aware
// promotion wiring, and the journal's legacy (3-tier, v1) compatibility.
//
// The headline properties mirror the engine's determinism contract: fits and
// predictions are bit-identical at any thread count, a surrogate-assisted run
// resumed from its journal is bit-identical to one that never crashed, and a
// journal written before the surrogate rung existed (checked-in fixture)
// still resumes bit-identically after its in-place upgrade.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"
#include "dse/engine.hpp"
#include "dse/jobspec.hpp"
#include "dse/journal.hpp"
#include "dse/space.hpp"
#include "legacy_fixture.hpp"
#include "surrogate/forest.hpp"
#include "surrogate/model.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace xlds {
namespace {

namespace fs = std::filesystem;

// Unique per-test scratch path, cleaned up on destruction.
class TempPath {
 public:
  explicit TempPath(const std::string& stem)
      : path_((fs::temp_directory_path() /
               ("xlds_surrogate_" + stem + "_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this))))
                  .string()) {
    fs::remove(path_);
  }
  ~TempPath() { fs::remove(path_); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

// Pin the pool width for one scope; restores the XLDS_THREADS default after.
class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) { set_parallel_threads(n); }
  ~ThreadGuard() { set_parallel_threads(0); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

bool same_foms(const dse::ExplorationResult& a, const dse::ExplorationResult& b) {
  if (a.evaluated.size() != b.evaluated.size()) return false;
  for (std::size_t i = 0; i < a.evaluated.size(); ++i) {
    const core::Fom& fa = a.evaluated[i].fom;
    const core::Fom& fb = b.evaluated[i].fom;
    if (a.evaluated[i].point.to_string() != b.evaluated[i].point.to_string()) return false;
    if (a.tiers[i] != b.tiers[i]) return false;
    // Bit-identical, not approximately equal.
    if (fa.latency != fb.latency || fa.energy != fb.energy ||
        fa.area_mm2 != fb.area_mm2 || fa.accuracy != fb.accuracy ||
        fa.feasible != fb.feasible || fa.note != fb.note)
      return false;
  }
  return true;
}

// Two well-separated clusters on feature 0 with a small feature-1 ripple:
// every split threshold drawn inside a cluster separates nothing, every
// threshold in the [2, 8) gap separates the clusters identically — so trees
// agree at the training points and disagree in the gap, the shape the
// uncertainty tests rely on.
std::vector<surrogate::Sample> cluster_samples() {
  std::vector<surrogate::Sample> samples;
  for (const double base : {0.0, 8.0})
    for (int i = 0; i < 8; ++i) {
      const double x0 = base + 0.25 * i;
      const double x1 = i % 2;
      samples.push_back({{x0, x1}, {(x0 < 5.0 ? 0.0 : 10.0) + 0.1 * x1}});
    }
  return samples;
}

// Smooth synthetic FOM for model-layer tests: a pure function of the design
// ordinals, learnable from the one-hot encoding.
core::Fom synthetic_fom(const core::DesignPoint& p) {
  const double d = static_cast<double>(p.device);
  const double a = static_cast<double>(p.arch);
  const double g = static_cast<double>(p.algo);
  core::Fom fom;
  fom.latency = 1e-3 * (1.0 + d) * (1.0 + 0.5 * a);
  fom.energy = 1e-6 * (2.0 + d + a + g);
  fom.area_mm2 = 0.1 * (1.0 + d) + 0.02 * a;
  fom.accuracy = 0.80 + 0.01 * g + 0.005 * d;
  fom.feasible = true;
  return fom;
}

std::vector<core::DesignPoint> viable_points() {
  const dse::SearchSpace space;
  std::vector<core::DesignPoint> points;
  for (std::size_t i = 0; i < space.size(); ++i)
    if (!space.culled(i)) points.push_back(space.at(i));
  return points;
}

// ---- forest -----------------------------------------------------------------

TEST(Forest, SingleSampleIsAMemorisedLeaf) {
  surrogate::RegressionForest forest;
  forest.fit({{{1.0, 2.0}, {3.5, -1.25}}});
  ASSERT_TRUE(forest.fitted());
  EXPECT_EQ(forest.n_features(), 2u);
  EXPECT_EQ(forest.n_outputs(), 2u);
  const auto pred = forest.predict({1.0, 2.0});
  ASSERT_EQ(pred.mean.size(), 2u);
  EXPECT_DOUBLE_EQ(pred.mean[0], 3.5);
  EXPECT_DOUBLE_EQ(pred.mean[1], -1.25);
  EXPECT_NEAR(pred.std[0], 0.0, 1e-12);
  EXPECT_NEAR(pred.std[1], 0.0, 1e-12);
  // Anywhere else lands in the same (only) leaf.
  EXPECT_DOUBLE_EQ(forest.predict({-100.0, 100.0}).mean[0], 3.5);
}

TEST(Forest, PredictBeforeFitThrows) {
  surrogate::RegressionForest forest;
  EXPECT_THROW(forest.predict({0.0}), PreconditionError);
}

TEST(Forest, RejectsInconsistentSamples) {
  surrogate::RegressionForest forest;
  EXPECT_THROW(forest.fit({}), PreconditionError);
  EXPECT_THROW(forest.fit({{{1.0}, {2.0}}, {{1.0, 2.0}, {2.0}}}), PreconditionError);
  forest.fit({{{1.0}, {2.0}}});
  EXPECT_THROW(forest.predict({1.0, 2.0}), PreconditionError);  // wrong arity
}

TEST(Forest, FitIsBitIdenticalAcrossThreadCounts) {
  const auto samples = cluster_samples();
  const std::vector<std::vector<double>> probes = {
      {0.5, 0.0}, {4.5, 1.0}, {8.25, 0.0}, {12.0, 1.0}};

  surrogate::RegressionForest one;
  std::vector<surrogate::RegressionForest::Prediction> pred_one;
  {
    ThreadGuard guard(1);
    one.fit(samples);
    for (const auto& p : probes) pred_one.push_back(one.predict(p));
  }
  surrogate::RegressionForest eight;
  {
    ThreadGuard guard(8);
    eight.fit(samples);
    EXPECT_EQ(one.state_hash(), eight.state_hash());
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const auto pred = eight.predict(probes[i]);
      EXPECT_EQ(pred.mean, pred_one[i].mean);  // bit-identical, not approximate
      EXPECT_EQ(pred.std, pred_one[i].std);
    }
  }
}

TEST(Forest, UncertaintyRisesBetweenTrainingClusters) {
  const auto samples = cluster_samples();
  surrogate::RegressionForest forest;
  forest.fit(samples);

  double train_avg = 0.0;
  for (const auto& s : samples) train_avg += forest.predict(s.x).std[0];
  train_avg /= static_cast<double>(samples.size());

  // Mid-gap: split thresholds drawn uniformly in the gap land on either side
  // of 5.0, so trees genuinely disagree here.
  const double gap_std = forest.predict({5.0, 0.0}).std[0];
  EXPECT_GT(gap_std, train_avg);
  EXPECT_GT(gap_std, 0.5);  // the clusters are 10 apart; disagreement is macroscopic
}

// ---- model ------------------------------------------------------------------

surrogate::SurrogateConfig small_model_config() {
  surrogate::SurrogateConfig config;
  config.trees = 16;
  config.min_history = 4;
  config.refit_every = 3;
  return config;
}

TEST(Model, RefitCadenceAndForcedRefit) {
  surrogate::SurrogateModel model(small_model_config());
  const auto points = viable_points();
  ASSERT_GE(points.size(), 8u);

  for (std::size_t i = 0; i < 3; ++i) {
    model.add(points[i], 1, synthetic_fom(points[i]));
    EXPECT_FALSE(model.refit_due()) << i;  // below min_history
  }
  model.add(points[3], 1, synthetic_fom(points[3]));
  EXPECT_TRUE(model.refit_due());
  EXPECT_FALSE(model.ready());
  EXPECT_TRUE(model.refit_if_due());
  EXPECT_TRUE(model.ready());
  EXPECT_EQ(model.refits(), 1u);
  EXPECT_FALSE(model.refit_if_due());  // nothing new since the fit

  model.add(points[4], 1, synthetic_fom(points[4]));
  model.add(points[5], 1, synthetic_fom(points[5]));
  EXPECT_FALSE(model.refit_due());  // 2 new < refit_every
  model.add(points[6], 1, synthetic_fom(points[6]));
  EXPECT_TRUE(model.refit_due());
  EXPECT_TRUE(model.refit_if_due());
  EXPECT_EQ(model.refits(), 2u);

  model.force_refit();
  EXPECT_TRUE(model.refit_due());  // forced, despite zero new observations
  EXPECT_TRUE(model.refit_if_due());
  EXPECT_EQ(model.refits(), 3u);
  EXPECT_FALSE(model.refit_due());  // the force is consumed
}

TEST(Model, PredictsFomWithNonNegativeUncertainty) {
  surrogate::SurrogateModel model(small_model_config());
  const auto points = viable_points();
  for (const auto& p : points) model.add(p, 1, synthetic_fom(p));
  ASSERT_TRUE(model.refit_if_due());

  for (std::size_t i = 0; i < 5; ++i) {
    const auto pred = model.predict(points[i], 1);
    EXPECT_GE(pred.rel_std, 0.0);
    EXPECT_GT(pred.fom.latency, 0.0);
    EXPECT_GT(pred.fom.energy, 0.0);
    EXPECT_TRUE(std::isfinite(pred.fom.accuracy));
  }
}

TEST(Model, UncertaintyLowerOnHistoryThanOffHistory) {
  surrogate::SurrogateModel model(small_model_config());
  const auto points = viable_points();
  ASSERT_GE(points.size(), 20u);
  // Train on every other viable point; hold the rest out.
  for (std::size_t i = 0; i < points.size(); i += 2)
    model.add(points[i], 1, synthetic_fom(points[i]));
  ASSERT_TRUE(model.refit_if_due());

  double seen = 0.0, unseen = 0.0;
  std::size_t n_seen = 0, n_unseen = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double u = model.predict(points[i], 1).rel_std;
    if (i % 2 == 0) {
      seen += u;
      ++n_seen;
    } else {
      unseen += u;
      ++n_unseen;
    }
  }
  EXPECT_LT(seen / static_cast<double>(n_seen), unseen / static_cast<double>(n_unseen));
}

TEST(Model, StateHashBitIdenticalAcrossThreadCounts) {
  const auto points = viable_points();
  const auto feed = [&](surrogate::SurrogateModel& model) {
    for (const auto& p : points) model.add(p, 1, synthetic_fom(p));
    ASSERT_TRUE(model.refit_if_due());
  };
  surrogate::SurrogateModel one(small_model_config());
  {
    ThreadGuard guard(1);
    feed(one);
  }
  surrogate::SurrogateModel eight(small_model_config());
  {
    ThreadGuard guard(8);
    feed(eight);
    EXPECT_EQ(one.state_hash(), eight.state_hash());
    for (std::size_t i = 0; i < 5; ++i) {
      const auto a = one.predict(points[i], 1);
      const auto b = eight.predict(points[i], 1);
      EXPECT_EQ(a.fom.latency, b.fom.latency);
      EXPECT_EQ(a.rel_std, b.rel_std);
    }
  }
}

TEST(Model, RejectsBadConfig) {
  surrogate::SurrogateConfig config;
  config.min_history = 1;
  EXPECT_THROW(surrogate::SurrogateModel{config}, PreconditionError);
  config = {};
  config.queries_per_charge = 0;
  EXPECT_THROW(surrogate::SurrogateModel{config}, PreconditionError);
}

// ---- engine integration -----------------------------------------------------

dse::EngineConfig surrogate_engine_config() {
  dse::EngineConfig config;
  config.strategy = "nsga2";
  config.budget = 33;  // the 20 %-of-grid acceptance budget
  config.seed = 1;
  config.surrogate.enabled = true;
  config.surrogate.trees = 24;
  config.surrogate.min_history = 8;
  config.surrogate.refit_every = 4;
  return config;
}

TEST(Engine, SurrogateOffByDefaultLeavesLadderAccountingUntouched) {
  dse::EngineConfig config;
  config.strategy = "lhs";
  config.budget = 20;
  const dse::ExplorationResult r = dse::explore(config);
  EXPECT_EQ(r.stats.surrogate_queries, 0u);
  EXPECT_EQ(r.stats.surrogate_promotions, 0u);
  EXPECT_EQ(r.stats.surrogate_refits, 0u);
  EXPECT_EQ(r.stats.charges_by_tier[0], 0u);
  EXPECT_EQ(r.stats.surrogate_budget_units, 0.0);
}

TEST(Engine, SurrogateScreensWithinTheBudgetLedger) {
  const dse::ExplorationResult r = dse::explore(surrogate_engine_config());
  const dse::ExplorationStats& s = r.stats;
  EXPECT_GT(s.surrogate_queries, 0u);
  EXPECT_GE(s.surrogate_refits, 1u);
  EXPECT_EQ(s.charges_by_tier[0], s.surrogate_queries);
  EXPECT_EQ(s.surrogate_hits + s.surrogate_promotions, s.surrogate_queries);
  // Queries are charged to the same ledger, at the configured exchange rate.
  EXPECT_LE(s.charges, r.budget);
  EXPECT_LE(static_cast<double>(s.charges) + s.surrogate_budget_units,
            static_cast<double>(r.budget) + 1e-9);
  EXPECT_DOUBLE_EQ(
      s.surrogate_budget_units,
      static_cast<double>(s.surrogate_queries) /
          static_cast<double>(surrogate_engine_config().surrogate.queries_per_charge));
}

TEST(Engine, SurrogateRunBitIdenticalAcrossThreadCounts) {
  dse::ExplorationResult one;
  {
    ThreadGuard guard(1);
    one = dse::explore(surrogate_engine_config());
  }
  dse::ExplorationResult eight;
  {
    ThreadGuard guard(8);
    eight = dse::explore(surrogate_engine_config());
  }
  EXPECT_TRUE(same_foms(one, eight));
  EXPECT_EQ(one.front, eight.front);
  EXPECT_EQ(one.ranking, eight.ranking);
  EXPECT_EQ(one.stats.surrogate_queries, eight.stats.surrogate_queries);
  EXPECT_EQ(one.stats.surrogate_promotions, eight.stats.surrogate_promotions);
  EXPECT_EQ(one.stats.surrogate_refits, eight.stats.surrogate_refits);
  EXPECT_EQ(one.stats.surrogate_disagreements, eight.stats.surrogate_disagreements);
}

TEST(Engine, SurrogateResumeAfterCrashIsBitIdentical) {
  dse::EngineConfig config = surrogate_engine_config();

  // Reference: uninterrupted run, no journal.
  const dse::ExplorationResult reference = dse::explore(config);
  ASSERT_GT(reference.stats.surrogate_queries, 0u);

  // Crash after 10 durable appends (some of them surrogate predictions),
  // then resume from the journal.
  TempPath journal("resume");
  config.journal_path = journal.str();
  config.abort_after_computed = 10;
  EXPECT_THROW(dse::explore(config), dse::AbortInjected);

  config.abort_after_computed = 0;
  const dse::ExplorationResult resumed = dse::explore(config);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.stats.journal_replayed, 10u);

  EXPECT_TRUE(same_foms(reference, resumed));
  EXPECT_EQ(reference.front, resumed.front);
  EXPECT_EQ(reference.ranking, resumed.ranking);
  // The surrogate's decisions replay exactly: same queries, same promotions,
  // same refit schedule — resume changes how values arrive, never which.
  EXPECT_EQ(reference.stats.surrogate_queries, resumed.stats.surrogate_queries);
  EXPECT_EQ(reference.stats.surrogate_promotions, resumed.stats.surrogate_promotions);
  EXPECT_EQ(reference.stats.surrogate_refits, resumed.stats.surrogate_refits);
  EXPECT_EQ(dse::result_to_json(reference, false).dump(2),
            dse::result_to_json(resumed, false).dump(2));
}

// ---- legacy journal compatibility -------------------------------------------

TEST(JournalLegacy, V1RoundTripsThroughUpgradeByteIdentically) {
  dse::EngineConfig config = dse::testfix::legacy_fixture_config();
  TempPath v2_path("v1_roundtrip_v2");
  config.journal_path = v2_path.str();
  const dse::ExplorationResult reference = dse::explore(config);
  ASSERT_GT(reference.stats.charges, 0u);

  const std::string v2_bytes = read_file(v2_path.str());
  TempPath v1_path("v1_roundtrip_v1");
  {
    std::ofstream out(v1_path.str(), std::ios::binary);
    out << dse::testfix::downgrade_journal_to_v1(v2_bytes);
  }

  // Inspection is version-agnostic: same records, tiers already remapped.
  const auto v2_info = dse::Journal::inspect(v2_path.str());
  const auto v1_info = dse::Journal::inspect(v1_path.str());
  EXPECT_EQ(v2_info.version, 2u);
  EXPECT_EQ(v1_info.version, 1u);
  EXPECT_EQ(v1_info.job_hash, v2_info.job_hash);
  ASSERT_EQ(v1_info.records.size(), v2_info.records.size());
  for (std::size_t i = 0; i < v1_info.records.size(); ++i) {
    EXPECT_EQ(v1_info.records[i].key, v2_info.records[i].key);
    EXPECT_EQ(v1_info.records[i].fidelity, v2_info.records[i].fidelity);
    EXPECT_EQ(v1_info.records[i].fom.latency, v2_info.records[i].fom.latency);
    EXPECT_EQ(v1_info.records[i].fom.accuracy, v2_info.records[i].fom.accuracy);
    EXPECT_EQ(v1_info.records[i].uncertainty, 0.0);
  }

  // Opening the v1 file upgrades it in place — to bytes identical to the
  // journal a current build would have written.
  {
    dse::Journal upgraded(v1_path.str(), v1_info.job_hash);
    EXPECT_TRUE(upgraded.open_info().upgraded);
    EXPECT_EQ(upgraded.open_info().replayed, reference.stats.charges);
  }
  EXPECT_EQ(read_file(v1_path.str()), v2_bytes);

  // A second open is a plain v2 resume: no upgrade, nothing changed.
  {
    dse::Journal again(v1_path.str(), v1_info.job_hash);
    EXPECT_FALSE(again.open_info().upgraded);
    EXPECT_EQ(again.records().size(), reference.stats.charges);
  }
}

TEST(JournalLegacy, V1ResumeIsBitIdenticalToAnUninterruptedRun) {
  dse::EngineConfig config = dse::testfix::legacy_fixture_config();
  const dse::ExplorationResult reference = dse::explore(config);

  // Produce a v1 journal of the complete run, then resume the job from it.
  TempPath v2_path("v1_resume_v2");
  {
    dse::EngineConfig journaled = config;
    journaled.journal_path = v2_path.str();
    dse::explore(journaled);
  }
  TempPath v1_path("v1_resume_v1");
  {
    std::ofstream out(v1_path.str(), std::ios::binary);
    out << dse::testfix::downgrade_journal_to_v1(read_file(v2_path.str()));
  }

  config.journal_path = v1_path.str();
  const dse::ExplorationResult resumed = dse::explore(config);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.stats.journal_replayed, reference.stats.charges);
  EXPECT_EQ(resumed.stats.computed, 0u);  // every pair served from the legacy file
  EXPECT_TRUE(same_foms(reference, resumed));
  EXPECT_EQ(reference.front, resumed.front);
  EXPECT_EQ(reference.ranking, resumed.ranking);
}

TEST(JournalLegacy, CheckedInFixtureResumesBitIdentically) {
  const std::string fixture = std::string(XLDS_TEST_DATA_DIR) + "/legacy_3tier.xjl";
  ASSERT_TRUE(fs::exists(fixture))
      << fixture << " missing — regenerate with make_legacy_fixture";

  // The committed file must still be v1: committing an upgraded copy would
  // quietly stop this test from exercising the legacy decode path.
  const auto info = dse::Journal::inspect(fixture);
  EXPECT_EQ(info.version, 1u);
  ASSERT_GT(info.records.size(), 0u);
  for (const auto& r : info.records)
    EXPECT_GE(r.fidelity, static_cast<std::uint32_t>(dse::Fidelity::kAnalytic));

  dse::EngineConfig config = dse::testfix::legacy_fixture_config();
  const dse::ExplorationResult reference = dse::explore(config);
  EXPECT_EQ(info.records.size(), reference.stats.charges);

  // Resume from a scratch copy (opening upgrades the file in place).
  TempPath copy("fixture_copy");
  fs::copy_file(fixture, copy.str());
  config.journal_path = copy.str();
  const dse::ExplorationResult resumed = dse::explore(config);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.stats.journal_replayed, reference.stats.charges);
  EXPECT_EQ(resumed.stats.computed, 0u);
  EXPECT_TRUE(same_foms(reference, resumed));
  EXPECT_EQ(reference.front, resumed.front);
  EXPECT_EQ(reference.ranking, resumed.ranking);
}

}  // namespace
}  // namespace xlds
