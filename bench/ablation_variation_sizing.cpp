// Ablation — the Eva-CAM variation extension (Sec. VI, "to properly consider
// variations, the distributions of device variations will be integrated into
// circuit models along with array size and mismatch limit prediction").
//
// Sweeps device-variation sigma and reports how the predicted mismatch limit
// and maximum matchline width shrink relative to the nominal (variation-
// blind) analysis, per technology.
#include <iostream>

#include "evacam/evacam.hpp"
#include "evacam/presets.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Ablation — variation-aware CAM array sizing",
               "nominal vs variation-integrated mismatch limits and matchline widths");

  Table table({"design", "sigma_rel", "mismatch limit (nominal)", "with variation",
               "max columns (nominal)", "with variation"});

  // Every (preset, sigma) projection is independent and deterministic —
  // evaluate the grid in parallel, emit rows in grid order.
  const std::vector<const char*> names = {"rram-2t2r-40nm", "pcm-2t2r-90nm", "fefet-2t-28nm"};
  const std::vector<double> sigmas = {0.0, 0.05, 0.10, 0.20};
  const auto foms = parallel_map<evacam::CamFom>(names.size() * sigmas.size(), [&](std::size_t i) {
    evacam::CamDesignSpec spec = evacam::preset_spec(names[i / sigmas.size()]);
    spec.device_sigma_rel = sigmas[i % sigmas.size()];
    return evacam::EvaCam(spec).evaluate();
  });
  for (std::size_t i = 0; i < foms.size(); ++i) {
    const evacam::CamFom& fom = foms[i];
    table.add_row({names[i / sigmas.size()], Table::num(sigmas[i % sigmas.size()], 2),
                   std::to_string(fom.mismatch_limit),
                   std::to_string(fom.mismatch_limit_with_variation),
                   std::to_string(fom.max_ml_columns),
                   std::to_string(fom.max_ml_columns_with_variation)});
  }
  std::cout << table;
  std::cout << "\nExpected shape: the variation-integrated limits shrink monotonically with\n"
               "sigma — 'larger arrays would suffer more variations on the MaLis' — and the\n"
               "shrinkage is harshest for BE/TH designs that must resolve many adjacent\n"
               "mismatch counts (the FeFET best-match preset).\n";
  return 0;
}
