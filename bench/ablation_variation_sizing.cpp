// Ablation — the Eva-CAM variation extension (Sec. VI, "to properly consider
// variations, the distributions of device variations will be integrated into
// circuit models along with array size and mismatch limit prediction").
//
// Sweeps device-variation sigma and reports how the predicted mismatch limit
// and maximum matchline width shrink relative to the nominal (variation-
// blind) analysis, per technology.
#include <iostream>

#include "evacam/evacam.hpp"
#include "evacam/presets.hpp"
#include "util/table.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Ablation — variation-aware CAM array sizing",
               "nominal vs variation-integrated mismatch limits and matchline widths");

  Table table({"design", "sigma_rel", "mismatch limit (nominal)", "with variation",
               "max columns (nominal)", "with variation"});

  for (const char* name : {"rram-2t2r-40nm", "pcm-2t2r-90nm", "fefet-2t-28nm"}) {
    for (double sigma : {0.0, 0.05, 0.10, 0.20}) {
      evacam::CamDesignSpec spec = evacam::preset_spec(name);
      spec.device_sigma_rel = sigma;
      const evacam::CamFom fom = evacam::EvaCam(spec).evaluate();
      table.add_row({name, Table::num(sigma, 2), std::to_string(fom.mismatch_limit),
                     std::to_string(fom.mismatch_limit_with_variation),
                     std::to_string(fom.max_ml_columns),
                     std::to_string(fom.max_ml_columns_with_variation)});
    }
  }
  std::cout << table;
  std::cout << "\nExpected shape: the variation-integrated limits shrink monotonically with\n"
               "sigma — 'larger arrays would suffer more variations on the MaLis' — and the\n"
               "shrinkage is harshest for BE/TH designs that must resolve many adjacent\n"
               "mismatch counts (the FeFET best-match preset).\n";
  return 0;
}
