// The two open questions the Sec.-III case study closes with:
//
//  Q1 — "What is the best baseline architecture to compare to?  Is an HDC
//        model more likely to be deployed 'on the edge', making small
//        batches more likely and a GPU less likely to be employed?"
//  Q2 — "What if an existing architecture (e.g., a TPU) is backed by a dense
//        or distributed non-volatile memory?  Is this a better way to
//        leverage an emerging technology?"
#include <iostream>

#include "arch/hdc_mapping.hpp"
#include "arch/platform.hpp"
#include "nvsim/nvram.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace xlds;

int main() {
  arch::HdcWorkload w;
  w.input_dim = 617;
  w.hv_dim = 2048;
  w.am_entries = 520;
  w.elem_bytes = 1;

  // ---- Q1: baseline choice across deployment scenarios ----------------------
  print_banner(std::cout, "Open question 1 — which baseline, at which batch size?",
               "edge deployment favours small batches; the GPU's amortisation "
               "never happens");

  Table q1({"platform", "b=1", "b=10", "b=1000"});
  struct Row {
    const char* name;
    const arch::Platform* p;
  };
  for (const Row& row : {Row{"datacenter GPU", &arch::gpu()}, Row{"edge GPU", &arch::edge_gpu()},
                         Row{"host CPU", &arch::cpu()}}) {
    std::vector<std::string> cells = {row.name};
    for (std::size_t batch : {std::size_t{1}, std::size_t{10}, std::size_t{1000}}) {
      const arch::KernelCost c = arch::hdc_gpu_inference(*row.p, w, batch);
      cells.push_back(si_format(c.latency / static_cast<double>(batch), "s", 2) + "/q");
    }
    q1.add_row(cells);
  }
  std::cout << q1;
  std::cout << "\nAt batch 1 (the edge regime) the CPU is within reach of the GPUs —\n"
               "launch/transfer overheads dominate, so the 'obvious' GPU baseline\n"
               "overstates the software side unless batching is realistic.\n";

  // ---- Q2: NVM-backed conventional accelerator ---------------------------------
  print_banner(std::cout, "Open question 2 — an edge accelerator backed by dense on-chip NVM",
               "projection + stored HVs NVM-resident: no weight streaming over the "
               "narrow edge DRAM bus");

  // On-chip NVM bandwidth/energy from the NVSim lane: a bank of RRAM
  // subarrays read in parallel.
  nvsim::NvRamConfig mem;
  mem.device = device::DeviceKind::kRram;
  mem.tech = "22nm";
  mem.capacity_bits = 32ull * 1024 * 1024;
  const nvsim::ArrayFom fom = nvsim::NvRamModel(mem).evaluate();
  constexpr double kParallelBanks = 64.0;
  const double nvm_bw = fom.read_bandwidth(mem.io_width) / 8.0 * kParallelBanks;  // B/s
  const double nvm_epb = fom.read_energy / (static_cast<double>(mem.io_width) / 8.0);

  Table q2({"configuration", "latency (b=1)", "latency/query (b=1000)", "energy/query (b=1000)"});
  {
    const arch::KernelCost b1 = arch::hdc_gpu_inference(arch::edge_gpu(), w, 1);
    const arch::KernelCost bn = arch::hdc_gpu_inference(arch::edge_gpu(), w, 1000);
    q2.add_row({"edge accel + DRAM (baseline)", si_format(b1.latency, "s", 2),
                si_format(bn.latency / 1000, "s", 2), si_format(bn.energy / 1000, "J", 2)});
  }
  {
    const arch::KernelCost b1 = arch::hdc_nvm_backed_inference(arch::edge_gpu(), w, 1, nvm_bw, nvm_epb);
    const arch::KernelCost bn =
        arch::hdc_nvm_backed_inference(arch::edge_gpu(), w, 1000, nvm_bw, nvm_epb);
    q2.add_row({"edge accel + on-chip RRAM", si_format(b1.latency, "s", 2),
                si_format(bn.latency / 1000, "s", 2), si_format(bn.energy / 1000, "J", 2)});
  }
  std::cout << q2;
  std::cout << "\nOn-chip NVM bank bandwidth modelled from the NVSim lane: "
            << si_format(nvm_bw, "B/s", 2) << ".\n"
            << "Expected shape: NVM residence removes the weight/AM streaming term — a\n"
               "real win where the DRAM bus is the bottleneck (the edge regime), yet\n"
               "still orders from the in-memory CAM pipeline (Fig. 3H): storing next to\n"
               "the compute is not the same as computing in the storage.\n";
  return 0;
}
