// Fig. 3H — end-to-end HDC inference latency across platforms, with the
// iso-accuracy context that qualifies each bar.
//
// Paper bars: GPU/HDC (1 query and 1000 queries), TPU-GPU hybrid, 3-bit
// FeFET CAM, 2-bit FeFET CAM (iso-accuracy only with longer HVs), 1-bit SRAM
// CAM (fastest but not iso-accurate), GPU/MLP (iso-accurate, no latency win).
#include <iostream>

#include "arch/hdc_mapping.hpp"
#include "arch/platform.hpp"
#include "hdc/cam_inference.hpp"
#include "hdc/model.hpp"
#include "nn/network.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/dataset.hpp"
#include "xbar/tiled.hpp"

using namespace xlds;

namespace {

struct CamSolution {
  double accuracy = 0.0;
  xbar::MvmCost encode;
  cam::SearchCost search;
};

CamSolution build_cam_solution(const workload::Dataset& ds, int bits, std::size_t hv_dim,
                               std::uint64_t seed) {
  Rng rng(seed);
  hdc::HdcConfig cfg;
  cfg.hv_dim = hv_dim;
  cfg.element_bits = bits;
  hdc::HdcModel model(cfg, ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);

  CamSolution sol;
  hdc::CamInferenceConfig hw;
  hw.subarray.fefet.bits = bits;
  hw.subarray.fefet.sigma_program = 0.094;
  hw.subarray.cols = 128;
  hw.subarray.sense_levels = 256;
  hw.subarray.sense_noise_rel = 0.01;
  hw.subarray.apply_variation = true;
  hw.aggregation = cam::Aggregation::kSumSensed;
  Rng hw_rng(seed + 1);
  hdc::HdcCamInference inf(model, hw, hw_rng);
  sol.accuracy = inf.accuracy(ds.test_x, ds.test_y);
  sol.search = inf.search_cost();

  // Encoder on crossbar tiles (the Fig. 2D path).
  xbar::TiledConfig tiled;
  tiled.tile.rows = 64;
  tiled.tile.cols = 64;
  tiled.tile.apply_variation = false;
  tiled.tile.read_noise_rel = 0.0;
  Rng xb_rng(seed + 2);
  xbar::TiledCrossbar encoder(tiled, ds.dim, hv_dim, xb_rng);
  sol.encode = encoder.mvm_cost();
  return sol;
}

std::string per_query(double total_latency, std::size_t batch) {
  return si_format(total_latency / static_cast<double>(batch), "s", 2);
}

}  // namespace

int main() {
  print_banner(std::cout, "Fig. 3H — HDC inference latency across platforms",
               "paper: 3-bit FeFET CAMs win at iso-accuracy; 1-bit is fastest "
               "but below iso-accuracy; GPU/MLP is iso-accurate but slow");

  const workload::Dataset ds = workload::make_named_dataset("isolet-like", 77);
  arch::HdcWorkload w;
  w.input_dim = ds.dim;
  w.hv_dim = 2048;
  w.am_entries = ds.train_x.size();
  w.elem_bytes = 1;

  Table table({"platform", "batch", "latency/query", "energy/query", "accuracy", "iso-acc?"});

  // Software reference accuracy (float cosine).
  double ref_acc = 0.0;
  {
    Rng rng(78);
    hdc::HdcConfig cfg;
    cfg.hv_dim = 2048;
    cfg.element_bits = 16;
    cfg.similarity = hdc::Similarity::kCosineReal;
    hdc::HdcModel model(cfg, ds.dim, ds.n_classes, rng);
    model.train(ds.train_x, ds.train_y);
    ref_acc = model.accuracy(ds.test_x, ds.test_y);
  }
  auto iso = [&](double acc) { return acc >= ref_acc - 0.02 ? "yes" : "NO"; };

  // GPU / HDC at batch 1 and 1000.
  for (std::size_t batch : {std::size_t{1}, std::size_t{1000}}) {
    const arch::KernelCost c = arch::hdc_gpu_inference(arch::gpu(), w, batch);
    table.add_row({"GPU / HDC (float)", std::to_string(batch), per_query(c.latency, batch),
                   si_format(c.energy / batch, "J", 2), Table::num(ref_acc, 3), iso(ref_acc)});
  }
  // TPU-GPU hybrid.
  {
    const arch::KernelCost c = arch::hdc_hybrid_inference(arch::tpu(), arch::gpu(), w, 1000);
    table.add_row({"TPU+GPU hybrid / HDC", "1000", per_query(c.latency, 1000),
                   si_format(c.energy / 1000, "J", 2), Table::num(ref_acc, 3), iso(ref_acc)});
  }

  // CAM solutions: 3-bit (D=2048), 2-bit (needs D=4096 for iso), 1-bit SRAM
  // (D=4096, still not iso).
  struct CamRow {
    const char* name;
    int bits;
    std::size_t hv_dim;
  };
  for (const CamRow& row : {CamRow{"FeFET CAM 3-bit (D=2048)", 3, 2048},
                            CamRow{"FeFET CAM 2-bit (D=2048)", 2, 2048},
                            CamRow{"FeFET CAM 2-bit (D=4096)", 2, 4096},
                            CamRow{"SRAM CAM 1-bit (D=2048)", 1, 2048}}) {
    const CamSolution sol = build_cam_solution(ds, row.bits, row.hv_dim, 90 + row.bits);
    const arch::KernelCost c = arch::hdc_cam_inference(sol.encode, sol.search, 1);
    table.add_row({row.name, "1", per_query(c.latency, 1), si_format(c.energy, "J", 2),
                   Table::num(sol.accuracy, 3), iso(sol.accuracy)});
    if (row.bits == 3) {
      const arch::KernelCost cb = arch::hdc_cam_inference(sol.encode, sol.search, 1000);
      table.add_row({row.name, "1000", per_query(cb.latency, 1000),
                     si_format(cb.energy / 1000, "J", 2), Table::num(sol.accuracy, 3),
                     iso(sol.accuracy)});
    }
  }

  // GPU / MLP baseline, trained to convergence on the same data.
  {
    Rng rng(95);
    const workload::Dataset std_ds = workload::standardised(ds);
    nn::Network mlp = nn::make_mlp(ds.dim, {64}, ds.n_classes, rng);
    for (int e = 0; e < 60; ++e)
      mlp.train_epoch(std_ds.train_x, std_ds.train_y, 0.002, rng, 0.9, /*weight_decay=*/0.003);
    const double acc = mlp.accuracy(std_ds.test_x, std_ds.test_y);
    const nn::LayerCounts counts = mlp.total_counts();
    for (std::size_t batch : {std::size_t{1}, std::size_t{1000}}) {
      const arch::KernelCost c =
          arch::mlp_gpu_inference(arch::gpu(), counts.macs, counts.params, batch);
      table.add_row({"GPU / MLP", std::to_string(batch), per_query(c.latency, batch),
                     si_format(c.energy / batch, "J", 2), Table::num(acc, 3), iso(acc)});
    }
  }

  std::cout << table;
  std::cout << "\nReference (float HDC) accuracy: " << Table::num(ref_acc, 3)
            << ". Expected shape: CAM bars orders of magnitude below the GPU bars;\n"
               "3-bit FeFET iso-accurate at D=2048; 1-bit fastest but 'NO' on iso-accuracy;\n"
               "GPU/MLP iso-accurate with no latency advantage at batch 1.\n";
  return 0;
}
