// Sec. V (first approach) — deriving instances from an open-hardware SoC
// template and projecting whole-application benefit.
//
// The X-HEEP-style flow: validated base components + a custom accelerator,
// checked against the template's area/power/bus budgets, with the
// application-level speedup (not the kernel speedup) as the output.
#include <iostream>

#include "arch/soc.hpp"
#include "util/table.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Sec. V — open-hardware SoC template integration",
               "instances derived from an ultra-low-power template; whole-app speedup");

  const arch::SocTemplate tmpl = arch::SocTemplate::ultra_low_power();
  std::cout << "template '" << tmpl.name << "': " << tmpl.area_budget_mm2 << " mm^2, "
            << tmpl.power_budget_w * 1e3 << " mW, "
            << tmpl.bus_bandwidth / 1e9 << " GB/s shared bus\n\n";

  Table table({"instance", "offloadable f", "fits?", "area (mm^2)", "power (mW)",
               "bus util", "app speedup"});

  auto add = [&](const char* name, const std::vector<arch::AcceleratorIp>& ips, double f) {
    arch::SocInstance soc(tmpl);
    for (const auto& ip : ips) soc.attach(ip);
    const arch::SocReport r = soc.integrate(f);
    table.add_row({name, Table::num(f, 2), r.fits ? "yes" : ("NO: " + r.violation),
                   Table::num(r.total_area_mm2, 2), Table::num(r.total_power_w * 1e3, 1),
                   Table::num(r.bus_utilisation, 2),
                   r.fits ? Table::num(r.application_speedup, 2) + "x" : "-"});
  };

  add("base template (no accel)", {}, 0.7);
  add("+ CGRA", {arch::cgra_ip()}, 0.7);
  add("+ in-SRAM compute", {arch::in_sram_compute_ip()}, 0.7);
  add("+ crossbar macro", {arch::crossbar_macro_ip()}, 0.7);
  add("+ crossbar macro (MVM-heavy app)", {arch::crossbar_macro_ip()}, 0.95);
  add("+ CGRA + crossbar", {arch::cgra_ip(), arch::crossbar_macro_ip()}, 0.95);
  add("+ 4x CGRA (over budget)", {arch::cgra_ip(), arch::cgra_ip(), arch::cgra_ip(),
                                  arch::cgra_ip()}, 0.7);

  std::cout << table;
  std::cout << "\nExpected shape: kernel speedups (4-18x) compress to 2-8x whole-app\n"
               "figures through Amdahl and the shared bus — the 'entire application'\n"
               "standpoint the open-hardware path exists to provide; budget violations\n"
               "are caught at the template level before any RTL work.\n";
  return 0;
}
