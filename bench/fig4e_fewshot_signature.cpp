// Fig. 4E — few-shot accuracy vs hash-signature length, and the latency
// advantage of the all-RRAM MANN pipeline.
//
// Paper claims: 128-bit signatures (the prototype limit) lose some accuracy
// against the software cosine baseline, but longer signatures close the gap
// (iso-accuracy inference); the RRAM mapping wins large latency/energy
// factors over the digital baseline.
#include <iostream>

#include "arch/mann_mapping.hpp"
#include "arch/platform.hpp"
#include "mann/mann.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/fewshot.hpp"

using namespace xlds;

namespace {

mann::MannConfig pipeline_config(mann::Backend backend, std::size_t bits) {
  mann::MannConfig cfg;
  cfg.image_side = 20;
  cfg.embedding = 64;
  cfg.signature_bits = bits;
  cfg.backend = backend;
  cfg.tlsh_threshold = 0.3;
  cfg.hash_xbar.rows = 64;
  cfg.hash_xbar.cols = 2 * bits;
  cfg.hash_xbar.read_noise_rel = 0.005;
  cfg.am.cols = bits;
  cfg.relaxation_s = 60.0;  // writing-to-query delay on the prototype
  return cfg;
}

double evaluate_backend(mann::Backend backend, std::size_t bits) {
  workload::FewShotSpec fs;
  fs.image_side = 20;
  fs.n_classes = 60;
  workload::FewShotGenerator pretrain_gen(fs, 500);
  Rng rng(501);
  mann::MannPipeline pipe(pipeline_config(backend, bits), rng);
  pipe.pretrain(pretrain_gen, 10, 12, 12, 0.001);
  workload::FewShotGenerator eval_gen(fs, 502);
  return pipe.evaluate(eval_gen, 30, 5, 1, 3);
}

}  // namespace

int main() {
  print_banner(std::cout, "Fig. 4E — few-shot accuracy vs signature length",
               "paper: hashing trails software cosine at 128 bits; longer "
               "signatures reach iso-accuracy");

  // Software cosine reference (signature length is irrelevant for it).
  const double ref = evaluate_backend(mann::Backend::kSoftwareCosine, 128);

  Table table({"signature bits", "RRAM TLSH accuracy", "software cosine", "gap"});
  for (std::size_t bits : {32u, 64u, 128u, 256u, 512u}) {
    const double acc = evaluate_backend(mann::Backend::kRramTlsh, bits);
    table.add_row({std::to_string(bits), Table::num(acc, 3), Table::num(ref, 3),
                   Table::num(acc - ref, 3)});
  }
  std::cout << table;

  print_banner(std::cout, "Fig. 4E (latency panel) — digital vs all-RRAM MANN",
               "5-way 1-shot query; CNN + hashing + associative search");
  Rng rng(510);
  mann::MannPipeline pipe(pipeline_config(mann::Backend::kRramTlsh, 128), rng);

  arch::MannWorkload w;
  w.cnn_macs = pipe.cnn_macs();
  w.cnn_param_bytes = pipe.cnn_macs() / 4;
  w.fv_dim = 64;
  w.am_entries = 5;
  w.signature_bits = 128;

  Table lat({"platform", "latency/query", "energy/query"});
  const arch::KernelCost digital = arch::mann_gpu_inference(arch::gpu(), w, 1);
  lat.add_row({"GPU (CNN + cosine AM)", si_format(digital.latency, "s", 2),
               si_format(digital.energy, "J", 2)});

  // All-RRAM: CNN layers as crossbar stages + hash + TCAM search.
  const cam::SearchCost hw_query = pipe.hardware_query_cost(5);
  xbar::MvmCost cnn_stage{hw_query.latency / 4.0, hw_query.energy / 4.0};
  xbar::MvmCost hash{50e-9, 0.5e-9};
  cam::SearchCost search{30e-9, 0.2e-9};
  const arch::KernelCost rram = arch::mann_rram_inference(cnn_stage, 6, hash, search, 1);
  lat.add_row({"all-RRAM (crossbars + TCAM)", si_format(rram.latency, "s", 2),
               si_format(rram.energy, "J", 2)});
  std::cout << lat;
  std::cout << "\nLatency factor (GPU / RRAM): " << Table::num(digital.latency / rram.latency, 0)
            << "x\nExpected shape: accuracy gap shrinks monotonically with signature length,\n"
               "crossing into iso-accuracy above the 128-bit prototype limit; the RRAM\n"
               "pipeline wins a large latency factor at batch 1.\n";
  return 0;
}
