// Ablation — cross-layer fault resilience of both case studies.
//
// Sweeps a foundry-style defect-mechanism mix along a stuck-cell-rate axis at
// three storage ages and reports the application accuracy of the HDC-CAM
// classifier (Sec. III) and the few-shot MANN (Sec. IV), plus Monte-Carlo
// array yield and the FOM cost of the enabled graceful-degradation policies.
// The full grid is written to BENCH_fault_resilience.json for plotting.
#include <fstream>
#include <iostream>

#include "fault/resilience.hpp"
#include "util/argparse.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace xlds;

namespace {

fault::ResilienceConfig sweep_config(bool with_policies, std::uint64_t base_seed) {
  fault::ResilienceConfig cfg;
  cfg.fault_rates = {0.0, 0.005, 0.01, 0.02, 0.05, 0.1};
  cfg.time_points_s = {0.0, 1.0e4, 1.0e7};
  cfg.seeds = 3;
  cfg.base_seed = base_seed;
  if (with_policies) {
    cfg.policies.spare_rows = 2;
    cfg.policies.spare_cols = 2;
    cfg.policies.requery_votes = 3;
    cfg.policies.exclude_subarrays = true;
  }
  return cfg;
}

void print_report(const fault::ResilienceConfig& cfg, const fault::ResilienceReport& rep) {
  Table table({"stuck-cell rate", "t = 0", "t = 1e4 s", "t = 1e7 s", "yield",
               "residual frac"});
  const std::size_t n_times = cfg.time_points_s.size();
  for (std::size_t ri = 0; ri < cfg.fault_rates.size(); ++ri) {
    std::vector<std::string> row{Table::num(cfg.fault_rates[ri], 3)};
    for (std::size_t ti = 0; ti < n_times; ++ti) {
      const auto& pt = rep.at(ri, ti, n_times);
      row.push_back("HDC " + Table::num(100.0 * pt.hdc_accuracy, 1) + " % / MANN " +
                    Table::num(100.0 * pt.mann_accuracy, 1) + " %");
    }
    row.push_back(Table::num(100.0 * rep.yield[ri].yield, 1) + " %");
    row.push_back(Table::num(rep.at(ri, 0, n_times).residual_fraction, 4));
    table.add_row(row);
  }
  std::cout << table;
}

void emit_json(const std::string& path, const fault::ResilienceConfig& bare_cfg,
               const fault::ResilienceReport& bare, const fault::ResilienceConfig& pol_cfg,
               const fault::ResilienceReport& pol) {
  std::ofstream json(path);
  json << "{\n  \"bench\": \"ablation_fault_resilience\",\n"
       << "  \"mechanism_mix\": \"foundry mixed (45/45 stuck on/off + line + SA faults)\",\n"
       << "  \"seeds\": " << bare_cfg.seeds << ",\n  \"variants\": [\n";
  const auto emit_variant = [&json](const char* name, const fault::ResilienceConfig& cfg,
                                    const fault::ResilienceReport& rep, bool last) {
    const std::size_t n_times = cfg.time_points_s.size();
    json << "    {\"policies\": \"" << name << "\",\n"
         << "     \"cost\": {\"area_factor\": " << rep.cost.area_factor
         << ", \"latency_factor\": " << rep.cost.latency_factor
         << ", \"energy_factor\": " << rep.cost.energy_factor << "},\n"
         << "     \"points\": [\n";
    for (std::size_t ri = 0; ri < cfg.fault_rates.size(); ++ri) {
      for (std::size_t ti = 0; ti < n_times; ++ti) {
        const auto& pt = rep.at(ri, ti, n_times);
        json << "       {\"fault_rate\": " << pt.fault_rate << ", \"time_s\": " << pt.time_s
             << ", \"hdc_accuracy\": " << pt.hdc_accuracy
             << ", \"mann_accuracy\": " << pt.mann_accuracy
             << ", \"residual_fraction\": " << pt.residual_fraction << "}"
             << (ri + 1 < cfg.fault_rates.size() || ti + 1 < n_times ? "," : "") << "\n";
      }
    }
    json << "     ],\n     \"yield\": [\n";
    for (std::size_t ri = 0; ri < rep.yield.size(); ++ri)
      json << "       {\"fault_rate\": " << cfg.fault_rates[ri]
           << ", \"yield\": " << rep.yield[ri].yield
           << ", \"mean_residual_fraction\": " << rep.yield[ri].mean_residual_fraction << "}"
           << (ri + 1 < rep.yield.size() ? "," : "") << "\n";
    json << "     ]}" << (last ? "" : ",") << "\n";
  };
  emit_variant("none", bare_cfg, bare, false);
  emit_variant("spares+requery+exclusion", pol_cfg, pol, true);
  json << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParse args("ablation_fault_resilience",
                      "accuracy vs stuck-cell rate at three storage ages, both case studies");
  util::add_bench_options(args, /*default_seed=*/20230417, "BENCH_fault_resilience.json");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  util::apply_bench_options(args);
  const std::uint64_t seed = args.uinteger("seed");

  print_banner(std::cout, "Ablation — cross-layer fault resilience",
               "accuracy vs stuck-cell rate at three storage ages, both case studies");
  std::cout << "Grid runs under deterministic forked streams on " << parallel_thread_count()
            << " thread(s) (XLDS_THREADS; results thread-count independent).\n\n";

  const fault::ResilienceConfig bare_cfg = sweep_config(/*with_policies=*/false, seed);
  const fault::ResilienceReport bare = fault::ResilienceEvaluator(bare_cfg).run();
  std::cout << "No mitigation policies:\n";
  print_report(bare_cfg, bare);

  const fault::ResilienceConfig pol_cfg = sweep_config(/*with_policies=*/true, seed);
  const fault::ResilienceReport pol = fault::ResilienceEvaluator(pol_cfg).run();
  std::cout << "\nSpare lines (2+2) + 3-vote re-query + subarray exclusion (area x"
            << Table::num(pol.cost.area_factor, 3) << ", latency x"
            << Table::num(pol.cost.latency_factor, 1) << "):\n";
  print_report(pol_cfg, pol);

  const fault::ResilienceCacheStats cache = fault::resilience_cache_stats();
  std::cout << "\nContext cache: " << cache.hits << "/" << cache.lookups
            << " lookups served from memo (policy variant rebuilt nothing).\n";

  emit_json(args.str("out"), bare_cfg, bare, pol_cfg, pol);
  std::cout << "\nExpected shape: accuracy is flat to ~1 % stuck cells, then degrades\n"
               "monotonically with rate and further with age; the policy variant holds\n"
               "accuracy and yield higher at every non-zero rate, paying its area and\n"
               "latency factors.  -> "
            << args.str("out") << "\n";
  return 0;
}
