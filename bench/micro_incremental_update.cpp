// Micro-benchmark — incremental rank-1 up/down-dates vs full refactorization
// of the cached nodal factor.
//
// A fault injection or partial re-program perturbs the crossbar conductance
// matrix by one rank-1 term per touched cell.  The pre-update behaviour paid
// a full envelope refactorization (O(n * bw^2)) on the next readout; the
// incremental path (NodalSolver::update_cells, method C1) patches the factor
// in place at O((n - p) * bw) per cell.  This bench times both at the solver
// level across patch sizes and array sizes, checks the updated factor agrees
// with a from-scratch factorization of the patched matrix, and reports the
// core::Profiler nodal counters so the factorize/update/decline accounting
// is visible.
//
// Emits BENCH_incremental_update.json.  `--update-smoke` is the CI gate: a
// single-cell update on a 64x64 array must be >= 5x faster than a full
// refactorization (the real ratio is ~2 orders of magnitude; 5x keeps CI
// jitter from masking a real regression) and must stay within the solver
// tolerance of the fresh factor.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/counters.hpp"
#include "device/rram.hpp"
#include "device/technology.hpp"
#include "util/argparse.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/nodal_solver.hpp"

using namespace xlds;

namespace {

constexpr std::size_t kFactorBytes = 512u << 20;

/// Per-segment wire conductance with the CrossbarConfig defaults (the same
/// derivation Crossbar uses internally).
double default_g_wire() {
  const xbar::CrossbarConfig cfg;
  const auto& node = device::tech_node(cfg.tech);
  return 1.0 / (node.wire_r_per_m * cfg.cell_pitch_f * node.feature_m);
}

MatrixD half_loaded(std::size_t n, const device::RramParams& p, std::uint64_t seed) {
  MatrixD g(n, n, p.g_min);
  Rng fill(seed);
  for (double& v : g.data())
    if (fill.bernoulli(0.5)) v = p.g_max;
  return g;
}

/// `m` distinct cells spread across the array; targets toggle each patch so
/// repeated timing reps never walk the conductances out of range.
std::vector<xbar::CellDelta> make_patch(std::size_t n, std::size_t m, const MatrixD& g,
                                        const device::RramParams& p, Rng& rng) {
  std::vector<xbar::CellDelta> patch;
  patch.reserve(m);
  while (patch.size() < m) {
    const auto r = static_cast<std::size_t>(rng.uniform() * static_cast<double>(n)) % n;
    const auto c = static_cast<std::size_t>(rng.uniform() * static_cast<double>(n)) % n;
    bool dup = false;
    for (const auto& d : patch) dup = dup || (d.row == r && d.col == c);
    if (dup) continue;
    // Flip between the two device states: guaranteed nonzero delta.
    patch.push_back({r, c, g(r, c) == p.g_min ? p.g_max : p.g_min});
  }
  return patch;
}

void flip_patch(std::vector<xbar::CellDelta>& patch, const device::RramParams& p) {
  for (auto& d : patch) d.g_new = d.g_new == p.g_min ? p.g_max : p.g_min;
}

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct UpdateResult {
  std::size_t n = 0;
  std::size_t patch_cells = 0;
  double update_s = 0.0;       ///< per patch (all cells), incremental
  double refactorize_s = 0.0;  ///< per full factorization
  double max_dev = 0.0;        ///< updated vs fresh factor, column currents, A
  double tol_current = 0.0;    ///< acceptance bound in current units

  double speedup() const { return update_s > 0.0 ? refactorize_s / update_s : 0.0; }
};

UpdateResult run_case(std::size_t n, std::size_t m, std::uint64_t seed) {
  UpdateResult res;
  res.n = n;
  res.patch_cells = m;
  const device::RramParams p;
  const double gw = default_g_wire();
  MatrixD g = half_loaded(n, p, seed);
  Rng rng(seed + 1);
  std::vector<xbar::CellDelta> patch = make_patch(n, m, g, p, rng);

  // --- full refactorization baseline (what the patch used to cost). -------
  {
    xbar::NodalSolver solver;
    std::size_t reps = 0;
    const auto t0 = std::chrono::steady_clock::now();
    do {
      if (!solver.factorize(g, gw, kFactorBytes)) {
        std::cerr << "factorization declined at " << n << "x" << n << "\n";
        std::exit(2);
      }
      ++reps;
    } while (seconds_since(t0) < 0.2 && reps < 50);
    res.refactorize_s = seconds_since(t0) / static_cast<double>(reps);
  }

  // --- incremental updates: one patch of m cells per rep, toggling. --------
  {
    xbar::NodalSolver solver;
    if (!solver.factorize(g, gw, kFactorBytes)) std::exit(2);
    std::size_t reps = 0;
    const auto t0 = std::chrono::steady_clock::now();
    do {
      if (!solver.update_cells(patch.data(), patch.size())) {
        std::cerr << "incremental update broke down at " << n << "x" << n << " m=" << m
                  << "\n";
        std::exit(2);
      }
      flip_patch(patch, p);
      ++reps;
    } while (seconds_since(t0) < 0.2 && reps < 2000);
    res.update_s = seconds_since(t0) / static_cast<double>(reps);
    if (reps % 2 == 1) flip_patch(patch, p);  // leave `patch` = next odd state
  }

  // --- agreement: one applied patch vs a from-scratch factorization. -------
  {
    xbar::NodalSolver updated;
    if (!updated.factorize(g, gw, kFactorBytes)) std::exit(2);
    if (!updated.update_cells(patch.data(), patch.size())) std::exit(2);
    MatrixD g_patched = g;
    for (const auto& d : patch) g_patched(d.row, d.col) = d.g_new;
    xbar::NodalSolver fresh;
    if (!fresh.factorize(g_patched, gw, kFactorBytes)) std::exit(2);

    std::vector<double> v_in(n);
    for (std::size_t r = 0; r < n; ++r)
      v_in[r] = 0.2 * (0.1 + 0.8 * static_cast<double>(r) / static_cast<double>(n - 1));
    std::vector<double> i_upd(n), i_fresh(n);
    xbar::NodalSolver::Workspace w1, w2;
    const auto r1 = updated.solve(v_in.data(), i_upd.data(), w1);
    const auto r2 = fresh.solve(v_in.data(), i_fresh.data(), w2);
    for (std::size_t c = 0; c < n; ++c)
      res.max_dev = std::max(res.max_dev, std::abs(i_upd[c] - i_fresh[c]));
    // Both factors answer the same SPD system; each solution sits within the
    // kNodalTolRel residual bar, amplified through the network conditioning
    // (~n^2/2 for an n x n resistor grid) and converted to current by a full
    // column of LRS cells — the same yardstick the GS cross-check uses.
    const double amplification = 0.5 * static_cast<double>(n) * static_cast<double>(n);
    res.tol_current = static_cast<double>(n) * p.g_max * amplification * xbar::kNodalTolRel * 0.2;
    if (!(r1.residual < xbar::kNodalTolRel * 0.2) || !(r2.residual < xbar::kNodalTolRel * 0.2)) {
      std::cerr << "solver residual above tolerance (updated " << r1.residual << ", fresh "
                << r2.residual << ")\n";
      std::exit(2);
    }
  }
  return res;
}

void print_results(const std::vector<UpdateResult>& results) {
  Table table({"array", "patch cells", "update/patch", "refactorize", "speedup", "max dev",
               "tolerance"});
  for (const UpdateResult& r : results) {
    table.add_row({std::to_string(r.n) + "x" + std::to_string(r.n),
                   std::to_string(r.patch_cells),
                   Table::num(r.update_s * 1e6, 1) + " us",
                   Table::num(r.refactorize_s * 1e6, 1) + " us",
                   Table::num(r.speedup(), 1) + "x",
                   Table::num(r.max_dev * 1e9, 3) + " nA",
                   Table::num(r.tol_current * 1e9, 1) + " nA"});
  }
  std::cout << table;
}

void emit_json(const std::vector<UpdateResult>& results) {
  std::ofstream json("BENCH_incremental_update.json");
  json << "{\n"
       << "  \"bench\": \"incremental_update\",\n"
       << "  \"threads\": " << parallel_thread_count() << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const UpdateResult& r = results[i];
    json << "    {\"array\": " << r.n << ", \"patch_cells\": " << r.patch_cells
         << ", \"update_seconds_per_patch\": " << r.update_s
         << ", \"refactorize_seconds\": " << r.refactorize_s
         << ", \"speedup\": " << r.speedup()
         << ", \"max_column_current_deviation_amps\": " << r.max_dev
         << ", \"tolerance_amps\": " << r.tol_current << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\n  -> BENCH_incremental_update.json\n";
}

void print_counters() {
  const auto c = core::Profiler::nodal();
  std::cout << "\nProfiler nodal counters: " << c.factorizations << " factorizations, "
            << c.incremental_updates << " incremental updates (" << c.updated_cells
            << " cells), " << c.update_declines << " declines, " << c.drift_refactorizations
            << " drift refactorizations, " << c.direct_solves << " direct / " << c.gs_solves
            << " GS solves.\n";
}

/// CI gate: a single-cell update at 64x64 must be >= 5x cheaper than a full
/// refactorization and agree with the fresh factor.
int run_update_smoke() {
  std::cout << "incremental update smoke (" << parallel_thread_count() << " thread(s)):\n";
  const UpdateResult r = run_case(64, /*m=*/1, /*seed=*/3000);
  std::cout << "  64x64, 1-cell patch: update " << r.update_s * 1e6 << " us, refactorize "
            << r.refactorize_s * 1e6 << " us, speedup " << r.speedup() << "x, max deviation "
            << r.max_dev << " A (tolerance " << r.tol_current << " A)\n";
  bool ok = true;
  if (r.speedup() < 5.0) {
    std::cout << "FAIL: incremental single-cell update is not >= 5x faster than a full "
                 "refactorization\n";
    ok = false;
  }
  if (r.max_dev > r.tol_current) {
    std::cout << "FAIL: updated factor deviates from a fresh factorization beyond the "
                 "solver tolerance\n";
    ok = false;
  }
  std::cout << (ok ? "update smoke OK\n" : "update smoke FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--update-smoke") == 0) return run_update_smoke();

  util::ArgParse args("micro_incremental_update",
                      "rank-1 factor up/down-dates vs full nodal refactorization");
  util::add_bench_options(args, /*default_seed=*/3000);
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  util::apply_bench_options(args);
  const std::uint64_t seed = args.uinteger("seed");

  print_banner(std::cout, "Micro-benchmark — incremental nodal factor updates",
               "method C1 rank-1 up/down-dates vs full envelope refactorization");
  std::cout << "Threads: " << parallel_thread_count() << " (XLDS_THREADS).\n\n";

  core::Profiler::reset_nodal();
  std::vector<UpdateResult> results;
  for (std::size_t n : {64u, 128u})
    for (std::size_t m : {1u, 2u, 4u, 8u, 16u}) results.push_back(run_case(n, m, seed));

  print_results(results);
  emit_json(results);
  print_counters();

  std::cout << "\nExpected shape: a single-cell patch costs two orders of magnitude less\n"
               "than refactorizing (the rank-1 sweep touches one envelope row set, the\n"
               "refactorization every one of them); the advantage shrinks roughly\n"
               "linearly in patch size and meets the refactorization cost around\n"
               "bandwidth/8 cells — which is exactly where the crossbar's incremental\n"
               "policy (nodal_update_batch_limit) stops accepting patches.\n";
  return 0;
}
