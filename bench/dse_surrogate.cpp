// DSE — the learned tier-0 surrogate rung: front fidelity and screening
// throughput.
//
// Two questions decide whether the surrogate earns its place under the
// ladder (ROADMAP item 1):
//
//   1. Fidelity: at the 20 %-of-grid acceptance budget, does surrogate-
//      assisted NSGA-II still recover the brute-force Pareto front?  The
//      screen must not dismiss true front members.
//   2. Throughput: on a budget far too small to enumerate the space, how
//      many distinct design points does one unit of budget price?  Queries
//      cost 1/queries_per_charge of a charge, so once the model is ready a
//      run should cover the whole viable space for a handful of charges.
//
// --surrogate-smoke runs both as a CI gate (front match + >= 10x points per
// unit budget + thread-count invariance) and the JSON lands in
// BENCH_surrogate.json.
#include <fstream>
#include <iostream>
#include <set>
#include <string>

#include "dse/engine.hpp"
#include "util/argparse.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace xlds;

namespace {

std::set<std::string> front_designs(const dse::ExplorationResult& r) {
  std::set<std::string> keys;
  for (const std::size_t f : r.front) keys.insert(r.evaluated[f].point.to_string());
  return keys;
}

std::size_t recovered_of(const dse::ExplorationResult& got, const std::set<std::string>& want) {
  std::size_t n = 0;
  for (const std::string& k : front_designs(got)) n += want.count(k);
  return n;
}

/// Distinct design points priced (really evaluated, or screened out with a
/// journaled prediction) per unit of budget actually consumed (ladder
/// charges + query charge-equivalents).
std::size_t points_priced(const dse::ExplorationResult& r) {
  return r.evaluated.size() + r.stats.surrogate_hits;
}

double points_per_unit(const dse::ExplorationResult& r) {
  const double spent =
      static_cast<double>(r.stats.charges) + r.stats.surrogate_budget_units;
  return spent > 0.0 ? static_cast<double>(points_priced(r)) / spent : 0.0;
}

dse::EngineConfig fidelity_config(std::uint64_t seed, bool surrogate_on) {
  dse::EngineConfig config;
  config.strategy = "nsga2";
  config.budget = 33;  // 20 % of the 168-point fig1 grid
  config.seed = seed;
  config.surrogate.enabled = surrogate_on;
  return config;
}

dse::EngineConfig throughput_config(std::uint64_t seed, bool surrogate_on) {
  dse::EngineConfig config;
  config.strategy = "nsga2";
  config.budget = 3;  // far below the 42-point viable space
  config.seed = seed;
  config.surrogate.enabled = surrogate_on;
  // Tiny-history settings: the throughput question is how fast the ledger
  // stretches once a model exists at all, so the model is allowed to be
  // rough — promotion on predicted-front membership still guards the spend,
  // and the fidelity phase above gates on a properly-trained forest.
  config.surrogate.min_history = 2;
  config.surrogate.refit_every = 2;
  config.surrogate.promote_uncertainty = 5.0;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParse args("dse_surrogate",
                      "surrogate tier-0 rung: front fidelity + points per unit budget");
  util::add_bench_options(args, /*default_seed=*/1, "BENCH_surrogate.json");
  args.add_flag("surrogate-smoke",
                "quick CI gate: front match, >= 10x points/budget, thread invariance");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  util::apply_bench_options(args);
  const std::uint64_t seed = args.uinteger("seed");

  print_banner(std::cout, "DSE — surrogate tier-0 rung",
               "front recovery at 20 % budget; space coverage per unit budget");

  // Reference: exhaustive single-tier enumeration of the fig1 space.
  dse::EngineConfig brute;
  brute.strategy = "lhs";
  brute.budget = 0;
  brute.seed = seed;
  const dse::ExplorationResult full = dse::explore(brute);
  const std::set<std::string> want = front_designs(full);
  std::cout << "Brute force: " << full.stats.charges << " evaluations, front size "
            << want.size() << ".\n\n";

  // Phase 1 — fidelity at the acceptance budget.
  const dse::ExplorationResult fid_off = dse::explore(fidelity_config(seed, false));
  const dse::ExplorationResult fid_on = dse::explore(fidelity_config(seed, true));

  // Phase 2 — throughput on a budget too small to enumerate anything.
  const dse::ExplorationResult thr_off = dse::explore(throughput_config(seed, false));
  const dse::ExplorationResult thr_on = dse::explore(throughput_config(seed, true));
  const double multiplier =
      points_per_unit(thr_off) > 0.0 ? points_per_unit(thr_on) / points_per_unit(thr_off)
                                     : 0.0;

  Table table({"phase", "surrogate", "budget", "charges", "queries", "points priced",
               "front recovered", "points/unit"});
  const auto add = [&](const std::string& phase, const dse::ExplorationResult& r,
                       bool on) {
    table.add_row({phase, on ? "on" : "off", std::to_string(r.budget),
                   std::to_string(r.stats.charges),
                   std::to_string(r.stats.surrogate_queries),
                   std::to_string(points_priced(r)),
                   std::to_string(recovered_of(r, want)) + "/" + std::to_string(want.size()),
                   Table::num(points_per_unit(r), 2)});
  };
  add("fidelity", fid_off, false);
  add("fidelity", fid_on, true);
  add("throughput", thr_off, false);
  add("throughput", thr_on, true);
  std::cout << table;

  std::cout << "\nSurrogate run at 20 % budget: " << fid_on.stats.surrogate_queries
            << " queries (" << fid_on.stats.surrogate_budget_units << " budget units), "
            << fid_on.stats.surrogate_promotions << " promoted, "
            << fid_on.stats.surrogate_refits << " refits, "
            << fid_on.stats.surrogate_disagreements << " disagreements.\n"
            << "Points per unit budget multiplier (throughput phase): " << Table::num(multiplier, 1)
            << "x.\n";
  std::cout << "\nExpected shape: the screened run recovers the same front as the\n"
               "unscreened one while pricing the whole viable space; on the tiny\n"
               "budget the surrogate covers every viable point for ~3 charges where\n"
               "the unassisted search affords 3 points.\n";

  if (!args.str("out").empty()) {
    std::ofstream json(args.str("out"));
    json << "{\n  \"bench\": \"dse_surrogate\",\n  \"seed\": " << seed
         << ",\n  \"viable_points\": " << full.stats.charges
         << ",\n  \"front_size\": " << want.size() << ",\n  \"fidelity\": {"
         << "\"budget\": " << fid_on.budget
         << ", \"recovered_off\": " << recovered_of(fid_off, want)
         << ", \"recovered_on\": " << recovered_of(fid_on, want)
         << ", \"charges_on\": " << fid_on.stats.charges
         << ", \"queries_on\": " << fid_on.stats.surrogate_queries
         << ", \"promotions_on\": " << fid_on.stats.surrogate_promotions
         << ", \"refits_on\": " << fid_on.stats.surrogate_refits << "},\n  \"throughput\": {"
         << "\"budget\": " << thr_on.budget
         << ", \"points_priced_off\": " << points_priced(thr_off)
         << ", \"points_priced_on\": " << points_priced(thr_on)
         << ", \"charges_on\": " << thr_on.stats.charges
         << ", \"queries_on\": " << thr_on.stats.surrogate_queries
         << ", \"budget_units_on\": " << thr_on.stats.surrogate_budget_units
         << ", \"points_per_unit_off\": " << points_per_unit(thr_off)
         << ", \"points_per_unit_on\": " << points_per_unit(thr_on)
         << ", \"multiplier\": " << multiplier << "}\n}\n";
    std::cout << "\nJSON written to " << args.str("out") << ".\n";
  }

  if (args.flag("surrogate-smoke")) {
    bool ok = true;
    if (recovered_of(fid_on, want) < want.size()) {
      std::cerr << "surrogate-smoke: screened search lost front members ("
                << recovered_of(fid_on, want) << "/" << want.size()
                << " recovered) — the screen is dismissing true front points\n";
      ok = false;
    }
    if (multiplier < 10.0) {
      std::cerr << "surrogate-smoke: points-per-unit-budget multiplier "
                << Table::num(multiplier, 2) << "x is below the 10x bar\n";
      ok = false;
    }
    // Thread-count invariance of the full surrogate-assisted run.
    set_parallel_threads(1);
    const dse::ExplorationResult one = dse::explore(fidelity_config(seed, true));
    set_parallel_threads(8);
    const dse::ExplorationResult eight = dse::explore(fidelity_config(seed, true));
    set_parallel_threads(0);
    if (front_designs(one) != front_designs(eight) ||
        one.stats.surrogate_queries != eight.stats.surrogate_queries ||
        one.stats.surrogate_promotions != eight.stats.surrogate_promotions) {
      std::cerr << "surrogate-smoke: 1-thread and 8-thread surrogate runs diverge\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "\nsurrogate-smoke: front preserved, " << Table::num(multiplier, 1)
              << "x points per unit budget, thread-count invariant — gate passed.\n";
  }
  return 0;
}
