// Micro-benchmarks (google-benchmark) of the framework's hot kernels: CAM
// search, crossbar MVM (per IR-drop mode), HDC encode and TCAM search.
// These bound the simulator's own throughput — how many design points per
// second a triage sweep can afford.
#include <benchmark/benchmark.h>

#include "cam/fefet_cam.hpp"
#include "cam/rram_tcam.hpp"
#include "hdc/encoder.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

using namespace xlds;

namespace {

void BM_FeFetCamSearch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  cam::FeFetCamConfig cfg;
  cfg.fefet.bits = 3;
  cfg.rows = rows;
  cfg.cols = 128;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  Rng rng(1);
  cam::FeFetCamArray cam(cfg, rng);
  Rng data(2);
  std::vector<int> word(cfg.cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int& d : word) d = static_cast<int>(data.uniform_u32(8));
    cam.write_word(r, word);
  }
  std::vector<int> query(cfg.cols);
  for (int& d : query) d = static_cast<int>(data.uniform_u32(8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.search(query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * cfg.cols));
}
BENCHMARK(BM_FeFetCamSearch)->Arg(16)->Arg(64)->Arg(256);

void BM_RramTcamSearch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  cam::RramTcamConfig cfg;
  cfg.rows = rows;
  cfg.cols = 128;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  Rng rng(3);
  cam::RramTcamArray tcam(cfg, rng);
  Rng data(4);
  std::vector<int> word(cfg.cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int& b : word) b = data.bernoulli(0.5) ? 1 : 0;
    tcam.write_word(r, word);
  }
  std::vector<int> query(cfg.cols);
  for (int& b : query) b = data.bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcam.search(query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * cfg.cols));
}
BENCHMARK(BM_RramTcamSearch)->Arg(16)->Arg(64)->Arg(256);

void BM_CrossbarMvm(benchmark::State& state) {
  xbar::CrossbarConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.ir_drop = static_cast<xbar::IrDropMode>(state.range(0));
  Rng rng(5);
  xbar::Crossbar xb(cfg, rng);
  MatrixD w(64, 32);
  Rng data(6);
  for (double& v : w.data()) v = data.uniform(-1.0, 1.0);
  xb.program_weights(w);
  std::vector<double> x(64);
  for (double& v : x) v = data.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xb.mvm(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 64);
}
BENCHMARK(BM_CrossbarMvm)
    ->Arg(static_cast<int>(xbar::IrDropMode::kNone))
    ->Arg(static_cast<int>(xbar::IrDropMode::kAnalytic))
    ->Arg(static_cast<int>(xbar::IrDropMode::kNodal));

void BM_HdcEncode(benchmark::State& state) {
  const auto hv_dim = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  hdc::HdcEncoder enc(617, hv_dim, rng);
  std::vector<double> x(617);
  Rng data(8);
  for (double& v : x) v = data.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(enc.macs()));
}
BENCHMARK(BM_HdcEncode)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
