// Micro-benchmarks (google-benchmark) of the framework's hot kernels: CAM
// search, crossbar MVM (per IR-drop mode), HDC encode and TCAM search.
// These bound the simulator's own throughput — how many design points per
// second a triage sweep can afford.
//
// After the google-benchmark suite, main() measures the Monte-Carlo-sweep
// throughput of the deterministic parallel layer (the fig3g variation-sweep
// kernel) at 1/2/4/8 threads and writes BENCH_parallel_sweep.json so the
// perf trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "cam/fefet_cam.hpp"
#include "cam/rram_tcam.hpp"
#include "device/fefet.hpp"
#include "hdc/encoder.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

using namespace xlds;

namespace {

void BM_FeFetCamSearch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  cam::FeFetCamConfig cfg;
  cfg.fefet.bits = 3;
  cfg.rows = rows;
  cfg.cols = 128;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  Rng rng(1);
  cam::FeFetCamArray cam(cfg, rng);
  Rng data(2);
  std::vector<int> word(cfg.cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int& d : word) d = static_cast<int>(data.uniform_u32(8));
    cam.write_word(r, word);
  }
  std::vector<int> query(cfg.cols);
  for (int& d : query) d = static_cast<int>(data.uniform_u32(8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.search(query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * cfg.cols));
}
BENCHMARK(BM_FeFetCamSearch)->Arg(16)->Arg(64)->Arg(256);

void BM_RramTcamSearch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  cam::RramTcamConfig cfg;
  cfg.rows = rows;
  cfg.cols = 128;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  Rng rng(3);
  cam::RramTcamArray tcam(cfg, rng);
  Rng data(4);
  std::vector<int> word(cfg.cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int& b : word) b = data.bernoulli(0.5) ? 1 : 0;
    tcam.write_word(r, word);
  }
  std::vector<int> query(cfg.cols);
  for (int& b : query) b = data.bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcam.search(query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * cfg.cols));
}
BENCHMARK(BM_RramTcamSearch)->Arg(16)->Arg(64)->Arg(256);

void BM_CrossbarMvm(benchmark::State& state) {
  xbar::CrossbarConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.ir_drop = static_cast<xbar::IrDropMode>(state.range(0));
  Rng rng(5);
  xbar::Crossbar xb(cfg, rng);
  MatrixD w(64, 32);
  Rng data(6);
  for (double& v : w.data()) v = data.uniform(-1.0, 1.0);
  xb.program_weights(w);
  std::vector<double> x(64);
  for (double& v : x) v = data.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xb.mvm(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 64);
}
BENCHMARK(BM_CrossbarMvm)
    ->Arg(static_cast<int>(xbar::IrDropMode::kNone))
    ->Arg(static_cast<int>(xbar::IrDropMode::kAnalytic))
    ->Arg(static_cast<int>(xbar::IrDropMode::kNodal));

void BM_HdcEncode(benchmark::State& state) {
  const auto hv_dim = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  hdc::HdcEncoder enc(617, hv_dim, rng);
  std::vector<double> x(617);
  Rng data(8);
  for (double& v : x) v = data.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(enc.macs()));
}
BENCHMARK(BM_HdcEncode)->Arg(1024)->Arg(4096);

// ---- Monte-Carlo-sweep throughput of the parallel layer ---------------------

/// The fig3g_variation_accuracy Monte Carlo kernel: program-and-read-back a
/// mid level of a 3-bit FeFET cell under the measured 94 mV sigma.  Returns
/// the error count — the determinism checksum across thread counts.
std::size_t run_mc_sweep(std::size_t trials) {
  device::FeFetParams params;
  params.bits = 3;
  params.sigma_program = 0.094;
  const device::FeFetModel model(params);
  const int mid = params.levels() / 2;
  constexpr std::size_t kChunk = 500;  // thread-count-independent chunking
  Rng rng(7);
  std::vector<std::size_t> chunk_errors((trials + kChunk - 1) / kChunk, 0);
  parallel_for_rng(rng, trials, kChunk,
                   [&](Rng& trial_rng, std::size_t begin, std::size_t end, std::size_t ci) {
    std::size_t errors = 0;
    for (std::size_t t = begin; t < end; ++t)
      if (model.readback_level(model.program_vth(mid, trial_rng)) != mid) ++errors;
    chunk_errors[ci] = errors;
  });
  std::size_t errors = 0;
  for (std::size_t e : chunk_errors) errors += e;
  return errors;
}

void emit_parallel_sweep_json() {
  constexpr std::size_t kTrials = 500'000;
  constexpr int kReps = 3;
  struct Point {
    std::size_t threads = 0;
    double seconds = 0.0;
    std::size_t checksum = 0;
  };
  std::vector<Point> points;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    set_parallel_threads(threads);
    Point pt;
    pt.threads = threads;
    pt.seconds = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t checksum = run_mc_sweep(kTrials);
      const auto t1 = std::chrono::steady_clock::now();
      pt.seconds = std::min(pt.seconds, std::chrono::duration<double>(t1 - t0).count());
      pt.checksum = checksum;
    }
    points.push_back(pt);
  }
  set_parallel_threads(0);  // back to XLDS_THREADS / hardware default

  bool deterministic = true;
  for (const Point& pt : points) deterministic &= pt.checksum == points.front().checksum;
  const double t1s = points.front().seconds;

  std::ofstream json("BENCH_parallel_sweep.json");
  json << "{\n"
       << "  \"bench\": \"fig3g_variation_accuracy_mc_sweep\",\n"
       << "  \"kernel\": \"3-bit FeFET program+readback @ 94 mV sigma\",\n"
       << "  \"trials\": " << kTrials << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"deterministic_across_thread_counts\": " << (deterministic ? "true" : "false")
       << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    json << "    {\"threads\": " << pt.threads << ", \"seconds\": " << pt.seconds
         << ", \"trials_per_sec\": " << static_cast<double>(kTrials) / pt.seconds
         << ", \"speedup_vs_1t\": " << t1s / pt.seconds << ", \"checksum\": " << pt.checksum
         << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::cout << "\nParallel Monte-Carlo sweep (" << kTrials << " trials, fig3g kernel):\n";
  for (const Point& pt : points)
    std::cout << "  " << pt.threads << " thread(s): " << pt.seconds * 1e3 << " ms, "
              << static_cast<double>(kTrials) / pt.seconds / 1e6 << " Mtrials/s, speedup "
              << t1s / pt.seconds << "x, checksum " << pt.checksum << "\n";
  std::cout << "  determinism across thread counts: " << (deterministic ? "OK" : "VIOLATED")
            << "\n  -> BENCH_parallel_sweep.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_parallel_sweep_json();
  return 0;
}
