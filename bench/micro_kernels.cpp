// Micro-benchmarks (google-benchmark) of the framework's hot kernels: CAM
// search, crossbar MVM (per IR-drop mode), HDC encode, TCAM search, and the
// src/kernels/ compute layer (bit-packed Hamming, tiled MVM, batched
// samplers) against the scalar paths it replaced.  These bound the
// simulator's own throughput — how many design points per second a triage
// sweep can afford.
//
// After the google-benchmark suite, main() measures the kernels-vs-scalar
// speedups and writes BENCH_kernels.json, then measures the Monte-Carlo-sweep
// throughput of the deterministic parallel layer (the fig3g variation-sweep
// kernel, batched and scalar) at 1/2/4/8 threads and writes
// BENCH_parallel_sweep.json so the perf trajectory is tracked across PRs.
//
// `micro_kernels --kernel-smoke` runs only a ~1 s sanity comparison and exits
// nonzero if the packed Hamming kernel is slower than the scalar reference —
// the CI gate against a silently deoptimised kernel layer.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "cam/fefet_cam.hpp"
#include "cam/rram_tcam.hpp"
#include "device/fefet.hpp"
#include "hdc/encoder.hpp"
#include "kernels/bitpack.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/mvm.hpp"
#include "kernels/sampler.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

using namespace xlds;

namespace {

void BM_FeFetCamSearch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  cam::FeFetCamConfig cfg;
  cfg.fefet.bits = 3;
  cfg.rows = rows;
  cfg.cols = 128;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  Rng rng(1);
  cam::FeFetCamArray cam(cfg, rng);
  Rng data(2);
  std::vector<int> word(cfg.cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int& d : word) d = static_cast<int>(data.uniform_u32(8));
    cam.write_word(r, word);
  }
  std::vector<int> query(cfg.cols);
  for (int& d : query) d = static_cast<int>(data.uniform_u32(8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.search(query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * cfg.cols));
}
BENCHMARK(BM_FeFetCamSearch)->Arg(16)->Arg(64)->Arg(256);

void BM_RramTcamSearch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  cam::RramTcamConfig cfg;
  cfg.rows = rows;
  cfg.cols = 128;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  Rng rng(3);
  cam::RramTcamArray tcam(cfg, rng);
  Rng data(4);
  std::vector<int> word(cfg.cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int& b : word) b = data.bernoulli(0.5) ? 1 : 0;
    tcam.write_word(r, word);
  }
  std::vector<int> query(cfg.cols);
  for (int& b : query) b = data.bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcam.search(query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * cfg.cols));
}
BENCHMARK(BM_RramTcamSearch)->Arg(16)->Arg(64)->Arg(256);

void BM_CrossbarMvm(benchmark::State& state) {
  xbar::CrossbarConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.ir_drop = static_cast<xbar::IrDropMode>(state.range(0));
  Rng rng(5);
  xbar::Crossbar xb(cfg, rng);
  MatrixD w(64, 32);
  Rng data(6);
  for (double& v : w.data()) v = data.uniform(-1.0, 1.0);
  xb.program_weights(w);
  std::vector<double> x(64);
  for (double& v : x) v = data.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xb.mvm(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 64);
}
BENCHMARK(BM_CrossbarMvm)
    ->Arg(static_cast<int>(xbar::IrDropMode::kNone))
    ->Arg(static_cast<int>(xbar::IrDropMode::kAnalytic))
    ->Arg(static_cast<int>(xbar::IrDropMode::kNodal));

void BM_HdcEncode(benchmark::State& state) {
  const auto hv_dim = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  hdc::HdcEncoder enc(617, hv_dim, rng);
  std::vector<double> x(617);
  Rng data(8);
  for (double& v : x) v = data.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(enc.macs()));
}
BENCHMARK(BM_HdcEncode)->Arg(1024)->Arg(4096);

// ---- kernels layer vs scalar paths -----------------------------------------

std::vector<double> random_signs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.bernoulli(0.5) ? 1.0 : -1.0;
  return v;
}

void BM_HammingScalarDouble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> a = random_signs(n, 11), b = random_signs(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::hamming_ref(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HammingScalarDouble)->Arg(1024)->Arg(4096);

void BM_HammingPacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const kernels::PackedBits a = kernels::pack_signs(random_signs(n, 11));
  const kernels::PackedBits b = kernels::pack_signs(random_signs(n, 12));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::hamming(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HammingPacked)->Arg(1024)->Arg(4096);

// The old Matrix<T>::matvec_transposed inner loop, verbatim (no restrict, no
// tiling), compiled with the bench TU's default flags — the honest "before".
void matvec_t_legacy(const double* a, std::size_t rows, std::size_t cols, const double* x,
                     double* y) {
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = a + r * cols;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols; ++c) y[c] += row[c] * xr;
  }
}

void BM_MatvecTLegacy(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  Rng rng(13);
  std::vector<double> a(rows * cols), x(rows), y(cols);
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  for (double& v : x) v = rng.uniform();
  for (auto _ : state) {
    matvec_t_legacy(a.data(), rows, cols, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * cols));
}
BENCHMARK(BM_MatvecTLegacy)->Args({64, 64})->Args({617, 4096});

void BM_MatvecTKernel(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  Rng rng(13);
  std::vector<double> a(rows * cols), x(rows), y(cols);
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  for (double& v : x) v = rng.uniform();
  for (auto _ : state) {
    kernels::matvec_t(a.data(), rows, cols, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * cols));
}
BENCHMARK(BM_MatvecTKernel)->Args({64, 64})->Args({617, 4096});

void BM_NormalPolar(benchmark::State& state) {
  Rng rng(17);
  std::vector<double> block(4096);
  for (auto _ : state) {
    for (double& v : block) v = rng.normal(0.5, 0.094);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block.size()));
}
BENCHMARK(BM_NormalPolar);

void BM_NormalFastBatch(benchmark::State& state) {
  Rng rng(17);
  std::vector<double> block(4096);
  for (auto _ : state) {
    kernels::fill_normal_fast(rng, block.data(), block.size(), 0.5, 0.094);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block.size()));
}
BENCHMARK(BM_NormalFastBatch);

// ---- direct kernels-vs-scalar timing (BENCH_kernels.json + smoke gate) ------

/// Best-of-reps wall time of `iters` calls to fn.
template <class Fn>
double time_best(Fn&& fn, int iters, int reps = 3) {
  double best = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct KernelComparison {
  const char* name;
  const char* scalar_path;
  double scalar_seconds;
  double kernel_seconds;
  double speedup() const { return scalar_seconds / kernel_seconds; }
};

/// Measure the three headline kernels against their scalar predecessors.
/// `quick` shrinks the iteration counts for the ~1 s CI smoke run.
std::vector<KernelComparison> measure_kernels(bool quick) {
  std::vector<KernelComparison> out;
  const int scale = quick ? 1 : 8;

  {  // Hamming: packed XOR+popcount vs the scalar double-vector sign loop.
    constexpr std::size_t kDim = 4096;
    const std::vector<double> a = random_signs(kDim, 11), b = random_signs(kDim, 12);
    const kernels::PackedBits pa = kernels::pack_signs(a), pb = kernels::pack_signs(b);
    const int iters = 4000 * scale;
    std::size_t sink = 0;
    const double scalar = time_best(
        [&] { sink += kernels::hamming_ref(a.data(), b.data(), kDim); }, iters);
    const double packed =
        time_best([&] { sink += kernels::hamming(pa, pb); }, iters);
    benchmark::DoNotOptimize(sink);
    out.push_back({"hamming_4096", "scalar double-vector sign compare", scalar, packed});
  }

  {  // MVM: tiled restrict kernel vs the legacy Matrix loop.
    constexpr std::size_t kRows = 617, kCols = 4096;
    Rng rng(13);
    std::vector<double> a(kRows * kCols), x(kRows), y(kCols);
    for (double& v : a) v = rng.uniform(-1.0, 1.0);
    for (double& v : x) v = rng.uniform();
    const int iters = 20 * scale;
    const double scalar = time_best(
        [&] { matvec_t_legacy(a.data(), kRows, kCols, x.data(), y.data()); }, iters);
    const double kernel = time_best(
        [&] { kernels::matvec_t(a.data(), kRows, kCols, x.data(), y.data()); }, iters);
    benchmark::DoNotOptimize(y.data());
    out.push_back({"matvec_t_617x4096", "Matrix::matvec_transposed loop", scalar, kernel});
  }

  {  // Gaussian block: inverse-CDF batch vs per-call polar draws.
    std::vector<double> block(4096);
    Rng rng_a(17), rng_b(17);
    const int iters = 200 * scale;
    const double scalar = time_best(
        [&] {
          for (double& v : block) v = rng_a.normal(0.5, 0.094);
        },
        iters);
    const double kernel = time_best(
        [&] { kernels::fill_normal_fast(rng_b, block.data(), block.size(), 0.5, 0.094); },
        iters);
    benchmark::DoNotOptimize(block.data());
    out.push_back({"fill_normal_fast_4096", "per-call polar rng.normal", scalar, kernel});
  }
  return out;
}

void print_comparisons(const std::vector<KernelComparison>& cs) {
  for (const KernelComparison& c : cs)
    std::cout << "  " << c.name << ": scalar " << c.scalar_seconds * 1e3 << " ms, kernel "
              << c.kernel_seconds * 1e3 << " ms, speedup " << c.speedup() << "x\n";
}

void emit_kernels_json() {
  std::cout << "\nKernel layer vs scalar paths (isa: " << kernels::isa_name() << "):\n";
  const std::vector<KernelComparison> cs = measure_kernels(/*quick=*/false);
  print_comparisons(cs);

  std::ofstream json("BENCH_kernels.json");
  json << "{\n"
       << "  \"bench\": \"compute_kernel_layer\",\n"
       << "  \"isa\": \"" << kernels::isa_name() << "\",\n"
       << "  \"built_native\": " << (kernels::built_native() ? "true" : "false") << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < cs.size(); ++i) {
    const KernelComparison& c = cs[i];
    json << "    {\"kernel\": \"" << c.name << "\", \"scalar_path\": \"" << c.scalar_path
         << "\", \"scalar_seconds\": " << c.scalar_seconds
         << ", \"kernel_seconds\": " << c.kernel_seconds << ", \"speedup\": " << c.speedup()
         << "}" << (i + 1 < cs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "  -> BENCH_kernels.json\n";
}

/// CI smoke gate: a fast scalar-vs-kernel comparison; fails (nonzero) if the
/// packed Hamming kernel has regressed below the scalar reference.
int run_kernel_smoke() {
  std::cout << "kernel smoke (isa: " << kernels::isa_name() << "):\n";
  const std::vector<KernelComparison> cs = measure_kernels(/*quick=*/true);
  print_comparisons(cs);
  bool ok = true;
  for (const KernelComparison& c : cs) {
    if (c.speedup() >= 1.0) continue;
    // Hard gates: the packed Hamming kernel (compute-bound, large headroom)
    // and the matvec_t kernel — row blocking gives the latter real daylight
    // over the legacy loop even on the bandwidth-saturated 617x4096 shape, so
    // "never slower than scalar" is now enforceable rather than flaky.
    if (std::strcmp(c.name, "hamming_4096") == 0 ||
        std::strcmp(c.name, "matvec_t_617x4096") == 0) {
      std::cout << "FAIL: " << c.name << " is slower than its scalar path (speedup "
                << c.speedup() << "x)\n";
      ok = false;
    } else {
      std::cout << "WARN: " << c.name << " slower than its scalar path (speedup "
                << c.speedup() << "x)\n";
    }
  }
  std::cout << (ok ? "kernel smoke OK\n" : "kernel smoke FAILED\n");
  return ok ? 0 : 1;
}

// ---- Monte-Carlo-sweep throughput of the parallel layer ---------------------

/// The fig3g_variation_accuracy Monte Carlo kernel, scalar form: one
/// program-and-read-back per trial through rng.normal — the pre-kernels
/// baseline this PR's batched path is measured against.
std::size_t run_mc_sweep_scalar(std::size_t trials) {
  device::FeFetParams params;
  params.bits = 3;
  params.sigma_program = 0.094;
  const device::FeFetModel model(params);
  const int mid = params.levels() / 2;
  constexpr std::size_t kChunk = 500;  // thread-count-independent chunking
  Rng rng(7);
  std::vector<std::size_t> chunk_errors((trials + kChunk - 1) / kChunk, 0);
  // The work floor groups whole chunks into scheduler tasks so a small sweep
  // doesn't pay per-chunk dispatch; chunk boundaries (and the checksum) are
  // untouched by it.
  parallel_for_rng(
      rng, trials, kChunk,
      [&](Rng& trial_rng, std::size_t begin, std::size_t end, std::size_t ci) {
        std::size_t errors = 0;
        for (std::size_t t = begin; t < end; ++t)
          if (model.readback_level(model.program_vth(mid, trial_rng)) != mid) ++errors;
        chunk_errors[ci] = errors;
      },
      /*min_items_per_task=*/16000);
  std::size_t errors = 0;
  for (std::size_t e : chunk_errors) errors += e;
  return errors;
}

/// Batched form: per chunk, one fill_normal_fast block plus one vectorised
/// readback_errors pass.  Same estimator, same determinism contract (the
/// checksum is a pure function of (seed, trials, chunk) at any thread
/// count); its own draw sequence, so the checksum differs from the scalar
/// kernel's.
std::size_t run_mc_sweep_batched(std::size_t trials) {
  device::FeFetParams params;
  params.bits = 3;
  params.sigma_program = 0.094;
  const device::FeFetModel model(params);
  const int mid = params.levels() / 2;
  const double mid_vth = model.level_vth(mid);
  constexpr std::size_t kChunk = 2000;  // batches amortise; still ~250 chunks of work
  Rng rng(7);
  std::vector<std::size_t> chunk_errors((trials + kChunk - 1) / kChunk, 0);
  // Same minimum-work floor as the scalar sweep: grouping chunks into tasks
  // fixes the old small-batch negative scaling (threads slower than one)
  // without moving any chunk boundary — the checksum cannot change.
  parallel_for_rng(
      rng, trials, kChunk,
      [&](Rng& trial_rng, std::size_t begin, std::size_t end, std::size_t ci) {
        std::vector<double> vth(end - begin);
        kernels::fill_normal_fast(trial_rng, vth.data(), vth.size(), mid_vth,
                                  params.sigma_program);
        chunk_errors[ci] = model.readback_errors(mid, vth.data(), vth.size());
      },
      /*min_items_per_task=*/16000);
  std::size_t errors = 0;
  for (std::size_t e : chunk_errors) errors += e;
  return errors;
}

void emit_parallel_sweep_json() {
  constexpr std::size_t kTrials = 500'000;
  constexpr int kReps = 3;
  struct Point {
    std::size_t threads = 0;
    double seconds = 0.0;
    std::size_t checksum = 0;
  };

  // Pre-kernels baseline: the scalar per-trial path at one thread.
  set_parallel_threads(1);
  double scalar_1t = 1e30;
  std::size_t scalar_checksum = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    scalar_checksum = run_mc_sweep_scalar(kTrials);
    const auto t1 = std::chrono::steady_clock::now();
    scalar_1t = std::min(scalar_1t, std::chrono::duration<double>(t1 - t0).count());
  }

  std::vector<Point> points;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    set_parallel_threads(threads);
    Point pt;
    pt.threads = threads;
    pt.seconds = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t checksum = run_mc_sweep_batched(kTrials);
      const auto t1 = std::chrono::steady_clock::now();
      pt.seconds = std::min(pt.seconds, std::chrono::duration<double>(t1 - t0).count());
      pt.checksum = checksum;
    }
    points.push_back(pt);
  }
  set_parallel_threads(0);  // back to XLDS_THREADS / hardware default

  bool deterministic = true;
  for (const Point& pt : points) deterministic &= pt.checksum == points.front().checksum;
  const double t1s = points.front().seconds;

  std::ofstream json("BENCH_parallel_sweep.json");
  json << "{\n"
       << "  \"bench\": \"fig3g_variation_accuracy_mc_sweep\",\n"
       << "  \"kernel\": \"3-bit FeFET program+readback @ 94 mV sigma (batched)\",\n"
       << "  \"trials\": " << kTrials << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"scalar_baseline\": {\"threads\": 1, \"seconds\": " << scalar_1t
       << ", \"checksum\": " << scalar_checksum << "},\n"
       << "  \"deterministic_across_thread_counts\": " << (deterministic ? "true" : "false")
       << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    json << "    {\"threads\": " << pt.threads << ", \"seconds\": " << pt.seconds
         << ", \"trials_per_sec\": " << static_cast<double>(kTrials) / pt.seconds
         << ", \"speedup_vs_1t\": " << t1s / pt.seconds
         << ", \"speedup_vs_scalar_1t\": " << scalar_1t / pt.seconds
         << ", \"checksum\": " << pt.checksum << "}" << (i + 1 < points.size() ? "," : "")
         << "\n";
  }
  json << "  ]\n}\n";

  std::cout << "\nParallel Monte-Carlo sweep (" << kTrials << " trials, fig3g kernel):\n";
  std::cout << "  scalar baseline, 1 thread: " << scalar_1t * 1e3 << " ms, checksum "
            << scalar_checksum << "\n";
  for (const Point& pt : points)
    std::cout << "  batched, " << pt.threads << " thread(s): " << pt.seconds * 1e3 << " ms, "
              << static_cast<double>(kTrials) / pt.seconds / 1e6
              << " Mtrials/s, speedup vs scalar " << scalar_1t / pt.seconds << "x, checksum "
              << pt.checksum << "\n";
  std::cout << "  determinism across thread counts: " << (deterministic ? "OK" : "VIOLATED")
            << "\n  -> BENCH_parallel_sweep.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--kernel-smoke") == 0) return run_kernel_smoke();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_kernels_json();
  emit_parallel_sweep_json();
  return 0;
}
