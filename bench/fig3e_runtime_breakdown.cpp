// Fig. 3E — associative search as a fraction of end-to-end HDC runtime.
//
// Paper claim: for several datasets, search operations represent a
// substantial portion of end-to-end compute time, so accelerating search with
// technology-enabled AMs has application-level impact.
//
// Two views: (a) the analytical GPU platform model's search fraction, and
// (b) a measured wall-clock profile of this library's own software HDC
// implementation (encode vs per-sample associative search).
#include <chrono>
#include <iostream>

#include "arch/hdc_mapping.hpp"
#include "core/evaluate.hpp"
#include "hdc/encoder.hpp"
#include "util/table.hpp"
#include "workload/dataset.hpp"

using namespace xlds;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  print_banner(std::cout, "Fig. 3E — runtime share of associative search",
               "paper: search is a substantial, dataset-dependent share of "
               "end-to-end HDC time");

  constexpr std::size_t kHvDim = 2048;
  Table table({"dataset", "input dim", "AM entries", "model: search share (GPU, b=1)",
               "measured: search share (this impl)"});

  for (const std::string& name : workload::named_dataset_presets()) {
    const core::AppProfile profile = core::profile_for(name);

    arch::HdcWorkload w;
    w.input_dim = profile.input_dim;
    w.hv_dim = kHvDim;
    w.am_entries = profile.am_entries;
    const double model_share = arch::gpu_search_fraction(arch::gpu(), w, 1);

    // Measured: encode the test set, then search per-sample prototypes.
    const workload::Dataset ds = workload::make_named_dataset(name, 11);
    Rng rng(12);
    hdc::HdcEncoder encoder(ds.dim, kHvDim, rng);
    hdc::ElementQuantiser quant(4, 2.0);

    std::vector<std::vector<int>> am;
    am.reserve(ds.train_x.size());
    for (const auto& x : ds.train_x) am.push_back(quant.digits(encoder.encode(x)));

    double encode_time = 0.0, search_time = 0.0;
    volatile double sink = 0.0;
    for (const auto& x : ds.test_x) {
      auto t0 = std::chrono::steady_clock::now();
      const std::vector<int> q = quant.digits(encoder.encode(x));
      encode_time += seconds_since(t0);

      t0 = std::chrono::steady_clock::now();
      double best = 1e300;
      for (const auto& entry : am) {
        double d = 0.0;
        for (std::size_t i = 0; i < q.size(); ++i) {
          const double delta = q[i] - entry[i];
          d += delta * delta;
        }
        best = std::min(best, d);
      }
      sink = sink + best;
      search_time += seconds_since(t0);
    }
    const double measured_share = search_time / (encode_time + search_time);

    table.add_row({name, std::to_string(profile.input_dim), std::to_string(profile.am_entries),
                   Table::num(100.0 * model_share, 1) + " %",
                   Table::num(100.0 * measured_share, 1) + " %"});
  }

  std::cout << table;
  std::cout << "\nExpected shape: search share is large (tens of percent) and varies by\n"
               "dataset — highest where the AM holds many entries relative to input dim\n"
               "(e.g. language-like), lower for wide-input datasets.\n";
  return 0;
}
