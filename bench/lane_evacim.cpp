// Eva-CiM lane (Sec. VI) — per-program IMC favourability.
//
// "Eva-CiM can produce system-level energy and performance estimates for a
// given program, processor architecture, and IMC array... enables
// researchers to assess whether a program is IMC-favorable."  This bench
// runs a spectrum of programs — from MVM-starved to MVM-dominated — through
// the coupled timing + energy machine model and prints the verdicts.
#include <iostream>

#include "core/cim.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "xbar/crossbar.hpp"

using namespace xlds;

namespace {

/// A scalar-dominated control program (parsing/bookkeeping): IMC-hostile.
sim::Program scalar_program() {
  sim::Program prog;
  sim::Op compute;
  compute.kind = sim::OpKind::kCompute;
  compute.label = "control";
  compute.scalar_ops = 40'000'000;
  prog.push_back(compute);
  sim::Op stream;
  stream.kind = sim::OpKind::kMemStream;
  stream.label = "log-scan";
  stream.base = 0x2000'0000;
  stream.bytes = 8 << 20;
  prog.push_back(stream);
  sim::Op tiny_mvm;
  tiny_mvm.kind = sim::OpKind::kMvm;
  tiny_mvm.label = "small-filter";
  tiny_mvm.rows = 32;
  tiny_mvm.cols = 32;
  tiny_mvm.repeat = 64;
  prog.push_back(tiny_mvm);
  return prog;
}

}  // namespace

int main() {
  print_banner(std::cout, "Eva-CiM lane — is this program IMC-favourable?",
               "coupled timing + energy verdicts per program");

  Rng rng(1);
  xbar::CrossbarConfig tile;
  tile.rows = 64;
  tile.cols = 64;
  tile.apply_variation = false;
  tile.read_noise_rel = 0.0;
  sim::AcceleratorConfig accel;
  accel.present = true;
  accel.tile_cost = xbar::Crossbar(tile, rng).mvm_cost();

  const sim::CoreConfig core{.freq_hz = 2.0e9, .ipc = 2.0, .macs_per_cycle = 4.0};
  const sim::CacheConfig l1{.name = "L1", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 4,
                            .hit_latency_s = 0.5e-9};
  const sim::CacheConfig l2{.name = "L2", .size_bytes = 1024 * 1024, .line_bytes = 64, .ways = 8,
                            .hit_latency_s = 5e-9};

  struct Workload {
    std::string name;
    sim::Program program;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"control-flow program", scalar_program()});
  workloads.push_back({"transformer encoder", sim::make_transformer_program(sim::TransformerSpec{})});
  workloads.push_back({"LSTM", sim::make_lstm_program(sim::LstmSpec{})});
  workloads.push_back({"CNN (8 layers)", sim::make_cnn_program(sim::cifar_cnn(8))});

  Table table({"program", "MVM time share", "speedup", "energy ratio", "baseline E",
               "accel E", "IMC-favourable?"});
  for (const Workload& w : workloads) {
    const core::CimFavorability r =
        core::evaluate_cim_favorability(w.program, core, l1, l2, sim::DramConfig{}, accel);
    table.add_row({w.name, Table::num(100.0 * r.offloadable_fraction, 1) + " %",
                   Table::num(r.speedup, 1) + "x", Table::num(r.energy_ratio, 1) + "x",
                   si_format(r.baseline.total_energy(), "J", 2),
                   si_format(r.accelerated.total_energy(), "J", 2),
                   r.favourable ? "YES" : "no"});
  }
  std::cout << table;
  std::cout << "\nExpected shape: the verdict tracks the MVM time share — control-flow\n"
               "code is not worth an IMC macro, MVM-dominated ML kernels clearly are,\n"
               "with the transformer in between.  This per-program triage is what the\n"
               "Eva-CiM lane of the framework exists to answer.\n";
  return 0;
}
