// Ablation — HDC retraining and dimensionality at low element precision.
//
// The case-study literature reaches iso-accuracy at 3-4 bits only *with*
// software-hardware co-design: perceptron-style retraining and enough
// hypervector dimensionality.  This ablation removes each lever.
#include <iostream>

#include "hdc/model.hpp"
#include "util/table.hpp"
#include "workload/dataset.hpp"

using namespace xlds;

namespace {

struct TrainTest {
  double train = 0.0;
  double test = 0.0;
};

TrainTest accuracy_for(const workload::Dataset& ds, std::size_t hv_dim, int bits,
                       std::size_t retrain_epochs) {
  Rng rng(1100);
  hdc::HdcConfig cfg;
  cfg.hv_dim = hv_dim;
  cfg.element_bits = bits;
  cfg.retrain_epochs = retrain_epochs;
  hdc::HdcModel model(cfg, ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  return {model.accuracy(ds.train_x, ds.train_y), model.accuracy(ds.test_x, ds.test_y)};
}

}  // namespace

int main() {
  print_banner(std::cout, "Ablation — HDC retraining epochs x dimensionality x precision",
               "the co-design levers behind the Fig. 3C iso-accuracy claim");

  // Harder than the isolet-like preset so the training set is not linearly
  // trivial — retraining only acts on training-set errors.
  workload::GaussianClustersSpec spec;
  spec.name = "hard-isolet";
  spec.n_classes = 26;
  spec.dim = 617;
  spec.train_per_class = 20;
  spec.test_per_class = 12;
  spec.separation = 5.5;
  const workload::Dataset ds = workload::make_gaussian_clusters(spec, 1101);

  Table table({"HV length", "bits", "no retraining (train/test)", "1 epoch", "3 epochs",
               "6 epochs"});
  for (std::size_t hv_dim : {std::size_t{512}, std::size_t{2048}}) {
    for (int bits : {1, 3}) {
      std::vector<std::string> row = {std::to_string(hv_dim), std::to_string(bits)};
      for (std::size_t epochs : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                 std::size_t{6}}) {
        const TrainTest a = accuracy_for(ds, hv_dim, bits, epochs);
        row.push_back(Table::num(a.train, 2) + " / " + Table::num(a.test, 3));
      }
      table.add_row(row);
    }
  }
  std::cout << table;
  std::cout << "\nObserved shape (and an honest co-design lesson): perceptron retraining\n"
               "only acts on training-set errors.  On these Gaussian workloads the\n"
               "bundled model already fits the training split at D >= 2048, so the\n"
               "dominant iso-accuracy lever is *dimensionality* — retraining adds its\n"
               "few points only in the low-D / low-precision regime where training\n"
               "errors exist (and can slightly overfit there).  Co-design conclusions\n"
               "depend on the workload's separability, which is why the paper insists on\n"
               "comprehensive benchmarking across datasets (Sec. III).\n";
  return 0;
}
