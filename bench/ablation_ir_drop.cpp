// Ablation — IR-drop modelling fidelity and its application-level impact.
//
// (a) Validates the fast two-pass analytic IR-drop estimate against the
//     Gauss-Seidel nodal solve across array sizes and loading densities.
// (b) Quantifies the MVM error IR drop induces, the lever behind the
//     Sec.-IV guidance to keep operating currents low (HRS-biased mappings).
#include <chrono>
#include <fstream>
#include <iostream>

#include "util/argparse.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "xbar/crossbar.hpp"

using namespace xlds;

namespace {

xbar::CrossbarConfig config_for(std::size_t n, xbar::IrDropMode mode, double density) {
  xbar::CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.ir_drop = mode;
  (void)density;
  return cfg;
}

MatrixD dense_conductances(std::size_t n, double density, const device::RramParams& p,
                           Rng& rng) {
  MatrixD g(n, n, p.g_min);
  for (double& v : g.data())
    if (rng.bernoulli(density)) v = p.g_max;
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParse args("ablation_ir_drop",
                      "two-pass analytic estimate vs nodal solve across sizes and loadings");
  util::add_bench_options(args, /*default_seed=*/1000);
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  util::apply_bench_options(args);
  const std::uint64_t seed = args.uinteger("seed");

  print_banner(std::cout, "Ablation — IR-drop model fidelity and impact",
               "two-pass analytic estimate vs nodal solve; error induced in column currents");
  std::cout << "Nodal solver: cached-Cholesky direct path with red-black Gauss-Seidel\n"
            << "fallback, on " << parallel_thread_count()
            << " thread(s) (XLDS_THREADS; results thread-count independent).\n\n";

  Table table({"array", "LRS density", "worst-case drop (analytic)", "analytic vs nodal",
               "analytic time", "GS time", "GS iters", "direct cold", "direct query"});

  for (std::size_t n : {32u, 64u, 128u}) {
    for (double density : {0.25, 1.0}) {
      Rng rng(seed + n);
      xbar::Crossbar analytic(config_for(n, xbar::IrDropMode::kAnalytic, density), rng);
      auto gs_cfg = config_for(n, xbar::IrDropMode::kNodal, density);
      gs_cfg.nodal_direct = false;        // iterative reference
      gs_cfg.nodal_warm_start = false;    // cold-start timing
      gs_cfg.nodal_max_iters = 20000;     // enough to actually converge
      xbar::Crossbar gs(gs_cfg, rng);
      xbar::Crossbar direct(config_for(n, xbar::IrDropMode::kNodal, density), rng);
      Rng fill(seed + 1000 + n);
      const MatrixD g = dense_conductances(n, density, analytic.config().rram, fill);
      analytic.program_conductances(g);
      gs.program_conductances(g);
      direct.program_conductances(g);

      const std::vector<double> ones(n, 1.0);
      const auto t0 = std::chrono::steady_clock::now();
      const auto ia = analytic.column_currents(ones);
      const auto t1 = std::chrono::steady_clock::now();
      xbar::SolveStatus gs_status;
      const auto in = gs.column_currents(ones, gs_status);
      const auto t2 = std::chrono::steady_clock::now();
      // Direct path: the first query factorizes, every later one reuses it.
      const auto id_cold = direct.column_currents(ones);
      const auto t3 = std::chrono::steady_clock::now();
      constexpr int kRepeat = 16;
      for (int rep = 0; rep < kRepeat; ++rep) (void)direct.column_currents(ones);
      const auto t4 = std::chrono::steady_clock::now();
      (void)in;

      // Model error against the direct solve (machine-precision nodal truth).
      RunningStats rel_err;
      for (std::size_t c = 0; c < n; ++c)
        if (id_cold[c] > 0.0) rel_err.add(std::abs(ia[c] - id_cold[c]) / id_cold[c]);

      const double ta = std::chrono::duration<double>(t1 - t0).count();
      const double tn = std::chrono::duration<double>(t2 - t1).count();
      const double tc = std::chrono::duration<double>(t3 - t2).count();
      const double tq = std::chrono::duration<double>(t4 - t3).count() / kRepeat;
      table.add_row({std::to_string(n) + "x" + std::to_string(n), Table::num(density, 2),
                     Table::num(100.0 * analytic.ir_drop_worst_case(), 2) + " %",
                     Table::num(100.0 * rel_err.mean(), 2) + " % mean err",
                     Table::num(ta * 1e6, 1) + " us", Table::num(tn * 1e6, 1) + " us",
                     std::to_string(gs_status.iterations),
                     Table::num(tc * 1e6, 1) + " us", Table::num(tq * 1e6, 1) + " us"});
    }
  }
  std::cout << table;
  if (!args.str("out").empty()) {
    std::ofstream(args.str("out")) << table;
    std::cout << "\nTable written to " << args.str("out") << ".\n";
  }
  std::cout << "\nExpected shape: worst-case drop grows with array size and loading; the\n"
               "analytic estimate tracks the nodal solve within a few percent through\n"
               "64x64 at a ~100-1000x runtime advantage, degrading at extreme size x\n"
               "loading (128x128 all-LRS) — which is why the analytic model is the sweep\n"
               "default and the nodal solver the validation tool, and why practical\n"
               "designs cap tile size near 64x64 (as the Sec.-IV prototype did).\n"
               "The cached-factorization direct path pays its cost once per programming\n"
               "state ('direct cold') and then answers repeated queries orders of\n"
               "magnitude faster than a cold Gauss-Seidel solve ('direct query').\n";
  return 0;
}
