// Fig. 3C — HDC classification accuracy vs hypervector element precision.
//
// Paper claim: with 1- or 2-bit elements classification accuracy drops;
// 3-to-4-bit precision is sufficient to match the accuracy of high-precision
// elements (the software-hardware co-design sweet spot that motivates
// multi-bit FeFET CAM cells).
#include <iostream>

#include "hdc/model.hpp"
#include "util/table.hpp"
#include "workload/dataset.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Fig. 3C — HDC accuracy vs HV element precision",
               "paper: 1-2 bit elements lose accuracy; 3-4 bit reaches the "
               "full-precision plateau");

  const workload::Dataset ds = workload::make_named_dataset("isolet-like", 2023);
  constexpr std::size_t kHvDim = 2048;
  constexpr int kSeeds = 3;

  Table table({"element precision", "similarity", "accuracy (mean of 3 seeds)", "vs float"});
  double float_acc = 0.0;

  // Full-precision reference: cosine on real-valued hypervectors.
  {
    double sum = 0.0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(100 + seed);
      hdc::HdcConfig cfg;
      cfg.hv_dim = kHvDim;
      cfg.element_bits = 16;
      cfg.similarity = hdc::Similarity::kCosineReal;
      hdc::HdcModel model(cfg, ds.dim, ds.n_classes, rng);
      model.train(ds.train_x, ds.train_y);
      sum += model.accuracy(ds.test_x, ds.test_y);
    }
    float_acc = sum / kSeeds;
    table.add_row({"float (32b)", "cosine", Table::num(float_acc, 4), "+0.0000"});
  }

  for (int bits : {1, 2, 3, 4, 8}) {
    double sum = 0.0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(100 + seed);
      hdc::HdcConfig cfg;
      cfg.hv_dim = kHvDim;
      cfg.element_bits = bits;
      cfg.similarity = hdc::Similarity::kSquaredEuclideanDigits;
      hdc::HdcModel model(cfg, ds.dim, ds.n_classes, rng);
      model.train(ds.train_x, ds.train_y);
      sum += model.accuracy(ds.test_x, ds.test_y);
    }
    const double acc = sum / kSeeds;
    table.add_row({std::to_string(bits) + "b", "SE on digits", Table::num(acc, 4),
                   (acc >= float_acc ? "+" : "") + Table::num(acc - float_acc, 4)});
  }

  std::cout << table;
  std::cout << "\nWorkload: " << ds.name << " (" << ds.dim << "-d, " << ds.n_classes
            << " classes), D = " << kHvDim << ".\n"
            << "Expected shape: accuracy at 3-4 b within noise of float; 1 b visibly lower.\n";
  return 0;
}
