// Fig. 1 "lane 1" — a new device replacing an existing technology in an
// existing architecture: every device in a conventionally organised memory
// array (the NVSim/NVMExplorer lane of Sec. VI), plus the monolithic-3D
// variant (the DESTINY lane).
#include <iostream>

#include "nvsim/nvram.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Fig. 1 lane 1 — devices in a conventional memory array",
               "NVSim-class comparison at 40 nm, 8 Mb macro; 3D rows are the DESTINY lane");

  Table table({"device", "layers", "area (mm^2)", "read lat", "write lat", "read energy",
               "write energy", "leakage", "note"});

  auto add = [&](device::DeviceKind dev, std::size_t layers, const char* note) {
    nvsim::NvRamConfig cfg;
    cfg.device = dev;
    cfg.tech = "40nm";
    cfg.capacity_bits = 8ull * 1024 * 1024;
    cfg.layers_3d = layers;
    const nvsim::ArrayFom f = nvsim::NvRamModel(cfg).evaluate();
    table.add_row({device::to_string(dev), std::to_string(layers),
                   Table::num(to_mm2(f.area_m2), 3), si_format(f.read_latency, "s", 2),
                   si_format(f.write_latency, "s", 2), si_format(f.read_energy, "J", 2),
                   si_format(f.write_energy, "J", 2), si_format(f.leakage_power, "W", 2), note});
  };

  add(device::DeviceKind::kSram, 1, "volatile baseline");
  add(device::DeviceKind::kFeFet, 1, "logic-compatible NVM");
  add(device::DeviceKind::kRram, 1, "dense crosspoint");
  add(device::DeviceKind::kRram, 4, "monolithic 3D");
  add(device::DeviceKind::kRram, 8, "monolithic 3D");
  add(device::DeviceKind::kPcm, 1, "");
  add(device::DeviceKind::kPcm, 4, "monolithic 3D");
  add(device::DeviceKind::kMram, 1, "endurance champion");
  add(device::DeviceKind::kFlash, 1, "dense, write-hostile");

  std::cout << table;
  std::cout << "\nExpected shape: the paper's culling examples fall straight out — flash's\n"
               "write latency disqualifies it as working memory; RRAM/PCM trade read speed\n"
               "for density (more so stacked in 3D); SRAM stays the latency reference;\n"
               "MRAM pairs near-SRAM speed with unlimited endurance at moderate density.\n";
  return 0;
}
