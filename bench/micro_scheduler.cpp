// Micro-benchmark — work-stealing vs static scheduling on DSE-shaped batches.
//
// The DSE engine's batches are heterogeneous: a few Monte-Carlo-tier points
// cost ~100x an analytic point, and each MC point carries its own *inner*
// parallel loop.  A static chunker leaves every lane except the MC ones idle
// behind the slowest chunk, and (pre-stealing) the inner loops serialized
// inside their worker.  This bench measures exactly those two effects with
// virtual-cost tasks (sleeps), so the measured speedups reflect *scheduling
// quality*, not core count — meaningful even on single-core CI containers,
// where CPU-bound scaling is physically impossible but sleeping tasks still
// overlap perfectly.
//
//   hetero:  4 "MC" points (16 subtasks x 6 ms each) + 28 "analytic" points
//            (1.5 ms), one batch at 8 lanes.  Static pins each MC point's
//            96 ms inner loop to one lane -> makespan ~96 ms; stealing
//            spreads the 64 subtasks + cheap tail across all lanes ->
//            ~(4*96 + 42)/8 = 53 ms.
//   nested:  the 4 MC points alone.  Static gets 4-way parallelism at best
//            (inner loops inline); stealing uses all 8 lanes.
//
// Every run also checksums its results: the FNV-64 over the output doubles
// must be identical at 1 vs 8 threads and static vs stealing — the
// determinism contract the scheduler is not allowed to trade for speed.
//
// Emits BENCH_scheduler.json.  `--sched-smoke` is the CI gate: heterogeneous
// speedup >= 1.3x, nested-utilization speedup >= 1.33x (4 MC points on 8
// lanes must beat 4-way-only parallelism), checksums invariant, and at least
// one nested job actually ran cooperatively.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/counters.hpp"
#include "util/argparse.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace xlds;

namespace {

using Clock = std::chrono::steady_clock;

// Virtual workload shape (costs realised as sleeps).
constexpr std::size_t kMcPoints = 4;
constexpr std::size_t kAnalyticPoints = 28;
constexpr std::size_t kMcSubtasks = 16;
constexpr double kMcSubtaskMs = 6.0;
constexpr double kAnalyticMs = 1.5;

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

std::uint64_t fnv1a64_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct RunResult {
  double seconds = 0.0;
  std::uint64_t checksum = 0;
};

/// One DSE-shaped batch: `mc` expensive points with an inner parallel sweep,
/// then `cheap` light points.  MC points sit at the low indices — the LPT
/// order the engine's cost-aware dispatch produces — so the scheduler sees
/// the expensive work first.  Results land in pre-sized slots; the checksum
/// over them is the determinism witness.
RunResult run_batch(SchedulerMode mode, std::size_t threads, std::size_t mc, std::size_t cheap) {
  set_parallel_threads(threads);
  set_parallel_scheduler(mode);
  const std::size_t n = mc + cheap;
  std::vector<double> out(n, 0.0);
  const auto t0 = Clock::now();
  parallel_for(n, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      if (i < mc) {
        std::vector<double> sub(kMcSubtasks, 0.0);
        parallel_for(kMcSubtasks, 1, [&](std::size_t b2, std::size_t e2, std::size_t) {
          for (std::size_t s = b2; s < e2; ++s) {
            sleep_ms(kMcSubtaskMs);
            sub[s] = std::sin(static_cast<double>(i) * 31.0 + static_cast<double>(s) * 7.0);
          }
        });
        double acc = 0.0;
        for (const double v : sub) acc += v;  // fixed subtask order
        out[i] = acc;
      } else {
        sleep_ms(kAnalyticMs);
        out[i] = std::cos(static_cast<double>(i) * 13.0);
      }
    }
  });
  RunResult r;
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.checksum = fnv1a64_bytes(out.data(), out.size() * sizeof(double));
  return r;
}

double min_seconds(SchedulerMode mode, std::size_t threads, std::size_t mc, std::size_t cheap,
                   int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, run_batch(mode, threads, mc, cheap).seconds);
  return best;
}

struct BenchReport {
  double hetero_static_s = 0.0, hetero_steal_s = 0.0;
  double nested_static_s = 0.0, nested_steal_s = 0.0;
  bool checksums_equal = false;
  std::uint64_t checksum = 0;
  core::Profiler::SchedCounts steal_counters{};  ///< delta over one stealing hetero run

  double hetero_speedup() const { return hetero_static_s / hetero_steal_s; }
  double nested_speedup() const { return nested_static_s / nested_steal_s; }
};

BenchReport run_bench(int reps) {
  BenchReport rep;

  // Determinism sweep: every (threads, mode) combination must agree byte-wise.
  std::vector<std::uint64_t> sums;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (const SchedulerMode mode : {SchedulerMode::kStatic, SchedulerMode::kWorkStealing}) {
      sums.push_back(run_batch(mode, threads, kMcPoints, kAnalyticPoints).checksum);
    }
  }
  rep.checksum = sums[0];
  rep.checksums_equal = true;
  for (const std::uint64_t s : sums) rep.checksums_equal &= (s == rep.checksum);

  // Heterogeneous batch at 8 lanes: static chunking vs stealing.
  rep.hetero_static_s = min_seconds(SchedulerMode::kStatic, 8, kMcPoints, kAnalyticPoints, reps);
  const core::Profiler::SchedCounts before = core::Profiler::sched();
  rep.hetero_steal_s =
      min_seconds(SchedulerMode::kWorkStealing, 8, kMcPoints, kAnalyticPoints, reps);
  const core::Profiler::SchedCounts after = core::Profiler::sched();
  rep.steal_counters.jobs = after.jobs - before.jobs;
  rep.steal_counters.tasks = after.tasks - before.tasks;
  rep.steal_counters.stolen_tasks = after.stolen_tasks - before.stolen_tasks;
  rep.steal_counters.steal_failures = after.steal_failures - before.steal_failures;
  rep.steal_counters.nested_cooperative = after.nested_cooperative - before.nested_cooperative;
  rep.steal_counters.nested_inlined = after.nested_inlined - before.nested_inlined;

  // Nested utilization: 4 MC points alone on 8 lanes.
  rep.nested_static_s = min_seconds(SchedulerMode::kStatic, 8, kMcPoints, 0, reps);
  rep.nested_steal_s = min_seconds(SchedulerMode::kWorkStealing, 8, kMcPoints, 0, reps);

  set_parallel_scheduler(SchedulerMode::kWorkStealing);
  set_parallel_threads(0);
  return rep;
}

void emit_json(const BenchReport& r, const std::string& path) {
  std::ofstream json(path);
  json << "{\n"
       << "  \"bench\": \"work_stealing_scheduler\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"workload\": {\"mc_points\": " << kMcPoints << ", \"mc_subtasks\": " << kMcSubtasks
       << ", \"mc_subtask_ms\": " << kMcSubtaskMs << ", \"analytic_points\": " << kAnalyticPoints
       << ", \"analytic_ms\": " << kAnalyticMs << ", \"cost_model\": \"sleep\"},\n"
       << "  \"hetero_batch_8t\": {\"static_s\": " << r.hetero_static_s
       << ", \"steal_s\": " << r.hetero_steal_s << ", \"speedup\": " << r.hetero_speedup()
       << "},\n"
       << "  \"nested_utilization_8t\": {\"static_s\": " << r.nested_static_s
       << ", \"steal_s\": " << r.nested_steal_s << ", \"speedup\": " << r.nested_speedup()
       << "},\n"
       << "  \"determinism\": {\"checksums_equal\": " << (r.checksums_equal ? "true" : "false")
       << ", \"checksum\": " << r.checksum
       << ", \"runs\": \"1t/8t x static/steal\"},\n"
       << "  \"steal_counters_hetero\": {\"jobs\": " << r.steal_counters.jobs
       << ", \"tasks\": " << r.steal_counters.tasks
       << ", \"stolen_tasks\": " << r.steal_counters.stolen_tasks
       << ", \"steal_failures\": " << r.steal_counters.steal_failures
       << ", \"nested_cooperative\": " << r.steal_counters.nested_cooperative
       << ", \"nested_inlined\": " << r.steal_counters.nested_inlined << "}\n"
       << "}\n";
}

void print_report(const BenchReport& r) {
  std::cout << "heterogeneous batch (4 MC x 96 ms nested + 28 analytic x 1.5 ms, 8 lanes):\n"
            << "  static   " << r.hetero_static_s * 1e3 << " ms\n"
            << "  stealing " << r.hetero_steal_s * 1e3 << " ms   (" << r.hetero_speedup()
            << "x)\n"
            << "nested utilization (4 MC points alone, 8 lanes):\n"
            << "  static   " << r.nested_static_s * 1e3 << " ms  (inner loops inline -> 4-way)\n"
            << "  stealing " << r.nested_steal_s * 1e3 << " ms   (" << r.nested_speedup()
            << "x)\n"
            << "determinism: checksums " << (r.checksums_equal ? "identical" : "DIVERGED")
            << " across 1t/8t x static/steal\n"
            << "stealing counters (hetero): " << r.steal_counters.tasks << " tasks + "
            << r.steal_counters.stolen_tasks << " stolen, "
            << r.steal_counters.nested_cooperative << " nested cooperative, "
            << r.steal_counters.steal_failures << " failed scans\n";
}

int run_sched_smoke(const std::string& out_path) {
  std::cout << "scheduler smoke (sleep-cost workload, scheduling-bound):\n";
  const BenchReport r = run_bench(/*reps=*/2);
  print_report(r);
  emit_json(r, out_path);
  std::cout << "  -> " << out_path << "\n";
  bool ok = true;
  if (!(r.hetero_speedup() >= 1.3)) {
    std::cout << "FAIL: heterogeneous-batch stealing speedup " << r.hetero_speedup()
              << "x < 1.3x over static chunking\n";
    ok = false;
  }
  if (!(r.nested_speedup() >= 1.33)) {
    std::cout << "FAIL: nested-utilization speedup " << r.nested_speedup()
              << "x < 1.33x (4 MC points should beat 4-way-only parallelism)\n";
    ok = false;
  }
  if (!r.checksums_equal) {
    std::cout << "FAIL: checksums diverged across thread counts / scheduler modes\n";
    ok = false;
  }
  if (r.steal_counters.nested_cooperative == 0) {
    std::cout << "FAIL: no nested job ran cooperatively under stealing\n";
    ok = false;
  }
  std::cout << (ok ? "scheduler smoke OK\n" : "scheduler smoke FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scheduler.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--sched-smoke") == 0) return run_sched_smoke(out_path);

  util::ArgParse args("micro_scheduler",
                      "work-stealing vs static scheduling on DSE-shaped batches");
  util::add_bench_options(args, /*default_seed=*/0, /*default_out=*/"BENCH_scheduler.json");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  // NOTE: --threads/--sched are accepted but the bench drives both itself —
  // each measured run pins its own (threads, mode) pair.

  print_banner(std::cout, "Micro-benchmark — work-stealing evaluation scheduler",
               "heterogeneous-batch makespan, nested utilization, determinism");
  std::cout << "Costs are virtual (sleeps): results measure scheduling quality and are\n"
               "stable on single-core CI hosts, where sleeping tasks still overlap.\n\n";

  const BenchReport r = run_bench(/*reps=*/3);
  print_report(r);
  emit_json(r, args.str("out"));
  std::cout << "\n  -> " << args.str("out") << "\n";

  std::cout << "\nExpected shape: static pins each MC point's inner loop to one lane, so\n"
               "the heterogeneous makespan is ~one MC point (~96 ms) while stealing\n"
               "approaches total-work/lanes (~53 ms).  With only 4 MC points on 8 lanes\n"
               "the nested gap widens: static caps at 4-way, stealing spreads all 64\n"
               "subtasks.  Checksums must not move — placement is the only freedom the\n"
               "scheduler has.\n";
  return 0;
}
