// Fig. 4D — correlation between true cosine distance and hashed Hamming
// distance.
//
// Paper claim: with RRAM non-idealities (read noise, conductance
// relaxation), plain crossbar LSH correlates worse with cosine distance than
// software LSH; ternary LSH recovers most of the gap.
#include <cmath>
#include <iostream>

#include "mann/lsh.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace xlds;

namespace {

double cosine_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return 1.0 - dot / std::sqrt(na * nb);
}

/// Distance between a (possibly ternary) stored signature and a binary
/// query, normalised by the number of comparable (non-X) bits.
double normalised_distance(const mann::Signature& stored, const mann::Signature& query) {
  std::size_t d = 0, comparable = 0;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    if (stored[i] == cam::kDontCare) continue;
    ++comparable;
    if (stored[i] != query[i]) ++d;
  }
  return comparable ? static_cast<double>(d) / static_cast<double>(comparable) : 0.0;
}

}  // namespace

int main() {
  print_banner(std::cout, "Fig. 4D — cosine distance vs hashed Hamming distance",
               "paper: corr(software LSH) > corr(RRAM TLSH) > corr(RRAM LSH)");

  constexpr std::size_t kDim = 64;
  constexpr std::size_t kBits = 256;
  constexpr int kPairs = 150;
  constexpr double kRelax = 100.0;  // seconds between writing and querying
  constexpr double kTlshThreshold = 0.35;

  Rng setup(400);
  mann::SoftwareLsh sw(kDim, kBits, setup);

  xbar::CrossbarConfig cfg;
  cfg.rows = kDim;
  cfg.cols = 2 * kBits;
  cfg.read_noise_rel = 0.002;  // peripheral analog noise (HRS-mode currents are small)

  Rng data(401);
  std::vector<double> cos_d, d_sw, d_rram, d_tlsh;
  for (int p = 0; p < kPairs; ++p) {
    // Pair with controlled similarity: b = blend of a and an independent draw.
    std::vector<double> a(kDim), r(kDim), b(kDim);
    for (std::size_t i = 0; i < kDim; ++i) {
      a[i] = data.uniform();
      r[i] = data.uniform();
    }
    const double blend = data.uniform();
    for (std::size_t i = 0; i < kDim; ++i) b[i] = (1.0 - blend) * a[i] + blend * r[i];

    cos_d.push_back(cosine_distance(a, b));
    d_sw.push_back(normalised_distance(sw.hash(a), sw.hash(b)));

    // RRAM hashes on a freshly programmed array (the paper's prototype
    // reprogrammed devices as needed): store a's signature, let the devices
    // relax for the store-to-query interval, then hash the query — the
    // Fig. 4C instability enters between the two.
    mann::CrossbarLsh hw(cfg, kBits, setup);
    const mann::Signature stored_bin = hw.hash(a);
    const mann::Signature stored_ter = hw.hash_ternary(a, kTlshThreshold);
    hw.age(kRelax);
    const mann::Signature query = hw.hash(b);
    d_rram.push_back(normalised_distance(stored_bin, query));
    d_tlsh.push_back(normalised_distance(stored_ter, query));
  }

  Table table({"hashing scheme", "pearson r vs cosine distance"});
  const double r_sw = pearson(cos_d, d_sw);
  const double r_rram = pearson(cos_d, d_rram);
  const double r_tlsh = pearson(cos_d, d_tlsh);
  table.add_row({"software LSH (ideal)", Table::num(r_sw, 4)});
  table.add_row({"RRAM crossbar LSH", Table::num(r_rram, 4)});
  table.add_row({"RRAM crossbar TLSH", Table::num(r_tlsh, 4)});
  std::cout << table;
  std::cout << "\nExpected ordering: software >= TLSH > plain RRAM LSH (TLSH approaches\n"
               "the software correlation, the paper's Fig. 4D message).\n";
  return 0;
}
