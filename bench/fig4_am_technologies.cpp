// Sec. IV context — the AM technology choice for few-shot learning: the
// paper's RRAM prototype vs the FeFET TCAM alternative it cites (ref [31],
// ferroelectric TCAM for one-shot learning).
//
// Same CNN features, same crossbar TLSH hashing; only the associative
// memory differs.  The relaxation axis is where they part: RRAM filaments
// drift after the support set is written, FeFET V_th states hold.
#include <iostream>

#include "device/device.hpp"
#include "mann/mann.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/fewshot.hpp"

using namespace xlds;

namespace {

mann::MannConfig config_for(mann::Backend backend, double relax_s) {
  mann::MannConfig cfg;
  cfg.image_side = 20;
  cfg.embedding = 64;
  cfg.signature_bits = 128;
  cfg.backend = backend;
  cfg.tlsh_threshold = 0.3;
  cfg.hash_xbar.rows = 64;
  cfg.hash_xbar.cols = 256;
  cfg.hash_xbar.read_noise_rel = 0.005;
  cfg.am.cols = 128;
  cfg.fefet_am.fefet.bits = 1;
  cfg.fefet_am.cols = 128;
  cfg.fefet_am.fefet.sigma_program = 0.094;
  cfg.relaxation_s = relax_s;
  return cfg;
}

double evaluate(mann::Backend backend, double relax_s) {
  workload::FewShotSpec fs;
  fs.image_side = 20;
  fs.n_classes = 60;
  workload::FewShotGenerator pre(fs, 500);
  Rng rng(501);
  mann::MannPipeline pipe(config_for(backend, relax_s), rng);
  pipe.pretrain(pre, 10, 12, 12, 0.001);
  workload::FewShotGenerator ev(fs, 502);
  return pipe.evaluate(ev, 30, 5, 1, 3);
}

}  // namespace

int main() {
  print_banner(std::cout, "AM technology choice for few-shot learning (Sec. IV / ref [31])",
               "RRAM TCAM vs FeFET TCAM under store-to-query relaxation");

  Table table({"store-to-query delay", "RRAM-TLSH accuracy", "FeFET-TLSH accuracy"});
  for (double relax : {0.0, 600.0, 3600.0, 6.0 * 3600.0}) {
    table.add_row({relax == 0.0 ? "fresh" : si_format(relax, "s", 0),
                   Table::num(evaluate(mann::Backend::kRramTlsh, relax), 3),
                   Table::num(evaluate(mann::Backend::kFeFetTlsh, relax), 3)});
  }
  std::cout << table;

  // Write-cost context: the AM is rewritten every episode (one-shot
  // learning), so write energy/latency is a first-order FOM here.
  const auto& rram = device::traits(device::DeviceKind::kRram);
  const auto& fefet = device::traits(device::DeviceKind::kFeFet);
  std::cout << "\nPer-cell write: RRAM " << si_format(rram.write_energy, "J", 1) << " / "
            << si_format(rram.write_latency, "s", 0) << "; FeFET "
            << si_format(fefet.write_energy, "J", 1) << " / "
            << si_format(fefet.write_latency, "s", 0) << " at "
            << fefet.write_voltage << " V (the FeFET write-voltage tax).\n"
            << "Expected shape: at parity when fresh; the FeFET AM holds its accuracy as\n"
               "the delay grows while the RRAM AM's stored signatures blur with filament\n"
               "relaxation — the retention argument behind ferroelectric one-shot AMs,\n"
               "traded against the FeFET's higher write voltage.\n";
  return 0;
}
