// Ablation — the Sec.-VI premise itself: "while SPICE-based circuit
// simulations are accurate, they are also time-consuming and have poor
// scalability... a well-validated, analytical modeling/evaluation
// infrastructure is necessary".
//
// For the FeFET CAM matchline (with its *nonlinear* square-law pull-downs),
// compares the analytical discharge-time model against an RK4 transient
// integration of the true device law: per-point error, and the wall-clock
// cost of sweeping a design space with each.
#include <chrono>
#include <iostream>

#include "circuit/matchline.hpp"
#include "circuit/transient.hpp"
#include "circuit/wire.hpp"
#include "device/fefet.hpp"
#include "device/technology.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Ablation — analytical matchline model vs SPICE-lite transient",
               "accuracy of the exponential approximation under nonlinear FeFET pull-downs");

  const device::FeFetModel fefet{device::FeFetParams{}};
  const auto& node = device::tech_node("28nm");
  const circuit::WireModel wire(node, 12.0);

  circuit::MatchlineParams mlp;
  mlp.v_precharge = 1.0;
  mlp.v_sense = 0.5;
  mlp.cell_drain_cap = 2.0 * node.tx_drain_cap(node.min_tx_width_um);

  Table table({"columns", "mismatches", "transient t_d (ref)", "saturation model",
               "error", "small-signal RC", "error"});
  double total_transient_s = 0.0, total_analytic_s = 0.0;
  int points = 0;
  const double v_gs = fefet.search_voltage(1);  // one-step overdrive
  const double i_sat = fefet.drain_current(v_gs, fefet.level_vth(0));
  constexpr double kVdsat = 0.2;  // triode below, saturated above

  for (std::size_t cols : {std::size_t{32}, std::size_t{128}}) {
    const circuit::MatchlineModel ml(mlp, wire, cols);
    for (std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      // Reference: transient integration of the true device law — saturated
      // current while the line is high, triode rolloff as it collapses.
      circuit::TransientConfig cfg;
      cfg.capacitance = ml.capacitance();
      cfg.v_initial = mlp.v_precharge;
      cfg.v_target = mlp.v_sense;
      cfg.t_end = 200e-9;
      cfg.dt = 2e-12;
      const auto pulldown = [&](double v_ml) {
        const double factor = v_ml >= kVdsat ? 1.0 : v_ml / kVdsat;
        return static_cast<double>(k) * i_sat * factor;
      };
      auto t0 = std::chrono::steady_clock::now();
      const double t_transient = circuit::transient_crossing_time(cfg, pulldown);
      total_transient_s += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                               .count();

      t0 = std::chrono::steady_clock::now();
      // Analytical model 1 (the calibrated one): the device is a constant
      // current sink above V_dsat, so the line ramps linearly.
      const double t_saturation = ml.capacitance() *
                                  (mlp.v_precharge - std::max(mlp.v_sense, kVdsat)) /
                                  (static_cast<double>(k) * i_sat);
      // Analytical model 2 (naive): small-signal conductance at the cell's
      // characterisation bias, exponential RC discharge.
      const double g_cell = i_sat / fefet.params().vds_read;
      const double t_small_signal =
          ml.discharge_time(ml.total_conductance(static_cast<double>(k) * g_cell));
      total_analytic_s += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                              .count();
      ++points;

      auto err = [&](double t) {
        return Table::num(100.0 * (t - t_transient) / std::max(t_transient, 1e-15), 1) + " %";
      };
      table.add_row({std::to_string(cols), std::to_string(k),
                     si_format(t_transient, "s", 2), si_format(t_saturation, "s", 2),
                     err(t_saturation), si_format(t_small_signal, "s", 2),
                     err(t_small_signal)});
    }
  }
  std::cout << table;
  std::cout << "\nSweep cost for " << points << " design points: analytical "
            << si_format(total_analytic_s, "s", 2) << " (both models), transient "
            << si_format(total_transient_s, "s", 2) << " ("
            << Table::num(total_transient_s / std::max(total_analytic_s, 1e-12), 0)
            << "x slower).\nExpected shape: an analytical model calibrated to the device's "
               "operating\nregime (constant-current discharge) matches the transient within a "
               "few\npercent at ~10^4x less runtime; the naive small-signal RC is ~7x\n"
               "optimistic — the paper's point that analytical infrastructure must be\n"
               "*well-calibrated*, with transient/SPICE runs reserved for validation.\n";
  return 0;
}
