// Fig. 3F — subarray partitioning and aggregation-based errors.
//
// Paper claims: (i) searching segment-by-segment and tallying votes can pick
// the wrong global best match; (ii) accuracy improves as the CAM subarray
// size grows toward the full hypervector length ("max"), and longer
// hypervectors can compensate for aggregation errors at the cost of memory.
#include <iostream>

#include "hdc/cam_inference.hpp"
#include "hdc/model.hpp"
#include "util/table.hpp"
#include "workload/dataset.hpp"

using namespace xlds;

namespace {

double cam_accuracy(const hdc::HdcModel& model, const workload::Dataset& ds,
                    std::size_t subarray_cols, cam::Aggregation agg, Rng& rng) {
  hdc::CamInferenceConfig cfg;
  cfg.subarray.fefet.bits = model.config().element_bits;
  cfg.subarray.cols = subarray_cols;
  cfg.subarray.apply_variation = false;
  cfg.subarray.sense_noise_rel = 0.01;
  cfg.subarray.sense_levels = 256;
  cfg.aggregation = agg;
  hdc::HdcCamInference inf(model, cfg, rng);
  return inf.accuracy(ds.test_x, ds.test_y);
}

}  // namespace

int main() {
  print_banner(std::cout, "Fig. 3F — accuracy vs HV length x CAM subarray size",
               "paper: vote aggregation over small subarrays loses accuracy; "
               "subarray = HV length ('max') recovers it");

  // A deliberately hard dataset so aggregation errors are visible.
  workload::GaussianClustersSpec spec;
  spec.name = "hard-synthetic";
  spec.n_classes = 21;
  spec.dim = 128;
  spec.train_per_class = 20;
  spec.test_per_class = 10;
  spec.separation = 7.0;
  const workload::Dataset ds = workload::make_gaussian_clusters(spec, 33);

  Table table({"HV length", "subarray", "segments", "acc (vote)", "acc (sum-sensed)",
               "acc (software)"});

  for (std::size_t hv_dim : {std::size_t{512}, std::size_t{1024}, std::size_t{2048}}) {
    Rng rng(50);
    hdc::HdcConfig cfg;
    cfg.hv_dim = hv_dim;
    cfg.element_bits = 2;
    hdc::HdcModel model(cfg, ds.dim, ds.n_classes, rng);
    model.train(ds.train_x, ds.train_y);
    const double sw_acc = model.accuracy(ds.test_x, ds.test_y);

    for (std::size_t cols : {std::size_t{32}, std::size_t{64}, std::size_t{128}, hv_dim}) {
      if (cols > hv_dim) continue;
      Rng rng_vote(51), rng_sum(51);
      const double acc_vote = cam_accuracy(model, ds, cols, cam::Aggregation::kVote, rng_vote);
      const double acc_sum =
          cam_accuracy(model, ds, cols, cam::Aggregation::kSumSensed, rng_sum);
      const std::string label = cols == hv_dim ? "max" : std::to_string(cols);
      table.add_row({std::to_string(hv_dim), label, std::to_string((hv_dim + cols - 1) / cols),
                     Table::num(acc_vote, 3), Table::num(acc_sum, 3), Table::num(sw_acc, 3)});
    }
  }

  std::cout << table;
  std::cout << "\nExpected shape: vote accuracy rises with subarray size toward the software\n"
               "value at 'max'; longer HVs lift small-subarray accuracy (the paper's\n"
               "compensate-with-dimensionality lever); sum-sensed dominates vote.\n";
  return 0;
}
