// Ablation — the Sec.-IV co-optimisation: mapping RRAM conductance states
// away from the high-variation band.
//
// Compares the naive (endpoints-of-range) binary mapping against the
// variation-aware mapping on (a) the raw margin/sigma score and (b) the
// sensed-distance spread of a functional TCAM, plus the multi-level mapping
// the crossbar path uses.
#include <iostream>

#include "cam/rram_tcam.hpp"
#include "device/rram.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace xlds;

namespace {

struct ProgrammingFidelity {
  double mean_error_us = 0.0;  ///< |achieved - target| mean, uS
  double confusion = 0.0;      ///< fraction read back as the wrong level
};

/// Single-pulse-program every level of an n-level mapping repeatedly and
/// measure the achieved error and the nearest-level confusion rate (closed-
/// loop program-verify would mask the mapping difference — and costs write
/// time/energy the co-optimisation is meant to avoid).  The Monte Carlo
/// trials run in parallel chunks on forked RNG streams; error sums combine
/// in chunk order, so the result is identical at any XLDS_THREADS.
ProgrammingFidelity programming_fidelity(const device::RramModel& model, int levels,
                                         bool variation_aware, Rng& rng) {
  const auto& p = model.params();
  std::vector<double> targets(levels);
  for (int l = 0; l < levels; ++l) {
    targets[l] = variation_aware
                     ? model.variation_aware_level_conductance(l, levels)
                     : p.g_min + (p.g_max - p.g_min) * l / static_cast<double>(levels - 1);
  }
  constexpr std::size_t kTrialsPerLevel = 4000;
  constexpr std::size_t kChunk = 500;
  const std::size_t trials = kTrialsPerLevel * static_cast<std::size_t>(levels);
  const std::size_t n_chunks = (trials + kChunk - 1) / kChunk;
  std::vector<double> chunk_err(n_chunks, 0.0);
  std::vector<std::size_t> chunk_confused(n_chunks, 0);
  parallel_for_rng(rng, trials, kChunk,
                   [&](Rng& trial_rng, std::size_t begin, std::size_t end, std::size_t ci) {
    double err_sum = 0.0;
    std::size_t confused = 0;
    for (std::size_t t = begin; t < end; ++t) {
      const int l = static_cast<int>(t / kTrialsPerLevel);
      const double g = model.program_once(targets[l], trial_rng);  // single-pulse write
      err_sum += std::abs(g - targets[l]);
      // Read back as the nearest level of the same mapping.
      int best = 0;
      for (int m = 1; m < levels; ++m)
        if (std::abs(g - targets[m]) < std::abs(g - targets[best])) best = m;
      if (best != l) ++confused;
    }
    chunk_err[ci] = err_sum;
    chunk_confused[ci] = confused;
  });
  double err_total = 0.0;
  std::size_t confused = 0;
  for (std::size_t ci = 0; ci < n_chunks; ++ci) {
    err_total += chunk_err[ci];
    confused += chunk_confused[ci];
  }
  return {err_total / static_cast<double>(trials) * 1e6,
          static_cast<double>(confused) / static_cast<double>(trials)};
}

}  // namespace

int main() {
  print_banner(std::cout, "Ablation — variation-aware RRAM state mapping (Sec. IV)",
               "naive endpoint mapping vs mapping away from the high-variation band");

  const device::RramModel model{device::RramParams{}};

  // (a) per-level programming sigma of the two mappings, 4-level case.
  Table levels({"level (of 4)", "naive g (uS)", "sigma (uS)", "aware g (uS)", "sigma (uS)"});
  const auto& p = model.params();
  for (int l = 0; l < 4; ++l) {
    const double naive = p.g_min + (p.g_max - p.g_min) * l / 3.0;
    const double aware = model.variation_aware_level_conductance(l, 4);
    levels.add_row({std::to_string(l), Table::num(naive * 1e6, 2),
                    Table::num(model.sigma_at(naive) * 1e6, 3), Table::num(aware * 1e6, 2),
                    Table::num(model.sigma_at(aware) * 1e6, 3)});
  }
  std::cout << levels << '\n';

  // (b) functional impact: multi-level program-and-verify fidelity.
  Table fidelity({"levels", "mapping", "mean |error| (uS)", "level confusion"});
  for (int levels : {4, 8}) {
    for (bool aware : {false, true}) {
      Rng rng(900 + levels);
      const ProgrammingFidelity f = programming_fidelity(model, levels, aware, rng);
      fidelity.add_row({std::to_string(levels), aware ? "variation-aware" : "naive",
                        Table::num(f.mean_error_us, 3),
                        Table::num(100.0 * f.confusion, 2) + " %"});
    }
  }
  std::cout << fidelity;
  std::cout << "\nExpected shape: the aware mapping dodges the mid-band sigma bump for the\n"
               "interior levels, cutting both the achieved programming error and the\n"
               "level-confusion rate — 'conductance states can be mapped away from\n"
               "regions where the conductance variation is large'.\n";
  return 0;
}
