// DSE — multi-process evaluation shards + the persistent cross-run result
// cache: throughput and the determinism/crash-recovery pins.
//
// Three questions decide whether the shard layer earns its place under the
// engine (ISSUE 10 / the future DSE-as-a-service substrate):
//
//   1. Throughput: on an MC-heavy batch — per-point cost profiled from the
//      ladder's own Monte-Carlo cost_estimate — does a 4-shard pool beat
//      serial dispatch by >= 1.5x?  The batch is virtual-cost (each point
//      *waits* its estimate instead of burning one shared core computing
//      it), so the number measures what the pool controls — LPT dispatch,
//      in-flight pipelining, steal-by-redispatch — and holds on the 1-core
//      CI runner, where real CPU-bound work cannot overlap at all.
//   2. Reuse: a warm --cache rerun of a real MC job must be >= 10x faster
//      than the cold run that populated it (every physics evaluation served
//      from disk, zero recompute).
//   3. Determinism: front JSON and journal bytes must be bit-identical
//      across shard counts {1, 2, 4}, across cache states (none / cold /
//      warm), and across a run whose worker is SIGKILLed mid-batch —
//      sharding and caching are speed-only by contract.
//
// --shard-smoke runs all three as a CI gate and the JSON lands in
// BENCH_shards.json.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dse/engine.hpp"
#include "dse/jobspec.hpp"
#include "shard/shard_pool.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace xlds;

namespace {

namespace fs = std::filesystem;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string scratch(const std::string& stem) {
  const std::string path = (fs::temp_directory_path() / ("xlds_bench_" + stem)).string();
  fs::remove(path);
  return path;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The MC job every engine-level phase runs: NSGA-II over the full grid at
/// the Monte-Carlo tier.  One config, many variations of *how* it is
/// evaluated — the whole point is that the outputs never notice.
dse::EngineConfig mc_job() {
  dse::EngineConfig config;
  config.strategy = "nsga2";
  config.budget = 60;
  config.seed = 7;
  config.fidelity.max_fidelity = dse::Fidelity::kMonteCarlo;
  return config;
}

/// Resume-comparable output: what `xlds-dse --no-stats` would print.
std::string front_json(const dse::ExplorationResult& r) {
  return dse::result_to_json(r, /*include_stats=*/false).dump(2);
}

/// Cold = honestly cold: both process-wide memo layers dropped, so the next
/// evaluation pays full price (and a forked worker inherits nothing warm).
void drop_memo_caches() {
  dse::clear_fidelity_caches();
  core::clear_evaluation_caches();
}

struct TimedRun {
  dse::ExplorationResult result;
  double seconds = 0.0;
  std::string journal;  ///< journal bytes after the run
};

TimedRun timed_explore(dse::EngineConfig config, const std::string& journal_path) {
  config.journal_path = journal_path;
  fs::remove(journal_path);
  drop_memo_caches();
  TimedRun run;
  const double t0 = now_s();
  run.result = dse::explore(config);
  run.seconds = now_s() - t0;
  run.journal = read_bytes(journal_path);
  fs::remove(journal_path);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParse args("dse_shards",
                      "multi-process shards + persistent result cache: throughput and "
                      "bit-identity pins");
  util::add_bench_options(args, /*default_seed=*/7, "BENCH_shards.json");
  args.add_flag("shard-smoke",
                "quick CI gate: >= 1.5x at 4 shards, >= 10x warm cache, bit-identical "
                "fronts and journals everywhere");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  util::apply_bench_options(args);

  print_banner(std::cout, "DSE — evaluation shards + persistent result cache",
               "MC-heavy batch throughput; warm-cache reuse; determinism pins");

  // ---- Phase 1: MC-heavy batch throughput through the shard pool --------
  //
  // The batch is the viable grid, each point priced at the ladder's MC-tier
  // cost_estimate in virtual time (0.25 ms per analytic-tier unit, so the
  // resilience-probe-class points cost ~25 ms and digital points ~0.25 ms —
  // the same two-decade spread a real MC batch has).
  const dse::SearchSpace space({}, "isolet-like");
  const dse::FidelityLadder ladder(mc_job().fidelity,
                                   core::profile_for("isolet-like"));
  constexpr double kSecondsPerCostUnit = 250e-6;
  const auto virtual_cost_eval = [&ladder](const core::DesignPoint& p,
                                           std::uint32_t tier) {
    const double cost = ladder.cost_estimate(p, static_cast<dse::Fidelity>(tier));
    std::this_thread::sleep_for(std::chrono::duration<double>(cost * kSecondsPerCostUnit));
    core::Fom fom;  // deterministic filler: the phase times dispatch, not physics
    fom.latency = cost;
    fom.accuracy = 1.0 / (1.0 + cost);
    fom.note = p.to_string();
    return fom;
  };

  std::vector<shard::BatchItem> batch;
  for (std::size_t i = 0; i < space.size(); ++i)
    if (!space.culled(i)) batch.push_back({i, space.at(i)});
  // The engine hands the pool LPT order; the bench does the same.
  std::stable_sort(batch.begin(), batch.end(),
                   [&](const shard::BatchItem& a, const shard::BatchItem& b) {
                     return ladder.cost_estimate(a.point, dse::Fidelity::kMonteCarlo) >
                            ladder.cost_estimate(b.point, dse::Fidelity::kMonteCarlo);
                   });
  const std::uint32_t mc_tier = static_cast<std::uint32_t>(dse::Fidelity::kMonteCarlo);

  const double t_serial0 = now_s();
  std::vector<core::Fom> serial_foms;
  for (const shard::BatchItem& item : batch)
    serial_foms.push_back(virtual_cost_eval(item.point, mc_tier));
  const double t_serial = now_s() - t_serial0;

  const auto pool_run = [&](std::size_t shards) {
    shard::ShardConfig cfg;
    cfg.shards = shards;
    cfg.worker_threads = 1;
    cfg.job_hash = 0xbe9c4;
    cfg.application = "isolet-like";
    cfg.evaluator = virtual_cost_eval;
    shard::ShardPool pool(std::move(cfg));
    const double t0 = now_s();
    shard::BatchResult out = pool.evaluate(batch, mc_tier);
    return std::make_pair(now_s() - t0, std::move(out));
  };
  const auto [t_pool1, foms1] = pool_run(1);
  const auto [t_pool4, foms4] = pool_run(4);
  const double batch_speedup = t_pool4 > 0.0 ? t_serial / t_pool4 : 0.0;

  bool pool_identical = foms1.foms.size() == serial_foms.size() &&
                        foms4.foms.size() == serial_foms.size();
  for (std::size_t i = 0; pool_identical && i < serial_foms.size(); ++i)
    pool_identical = foms1.foms[i].latency == serial_foms[i].latency &&
                     foms4.foms[i].latency == serial_foms[i].latency &&
                     foms1.foms[i].note == serial_foms[i].note &&
                     foms4.foms[i].note == serial_foms[i].note;

  Table batch_table({"dispatch", "points", "wall s", "speedup vs serial"});
  batch_table.add_row({"serial", std::to_string(batch.size()), Table::num(t_serial, 3), "1.00x"});
  batch_table.add_row({"1 shard", std::to_string(batch.size()), Table::num(t_pool1, 3),
                       Table::num(t_pool1 > 0 ? t_serial / t_pool1 : 0, 2) + "x"});
  batch_table.add_row({"4 shards", std::to_string(batch.size()), Table::num(t_pool4, 3),
                       Table::num(batch_speedup, 2) + "x"});
  std::cout << batch_table << "\n";

  // ---- Phase 2: warm-cache reuse on the real MC job ----------------------
  const std::string cache_path = scratch("shards.xrc");
  dse::EngineConfig cached_job = mc_job();
  cached_job.cache_path = cache_path;
  const TimedRun cold = timed_explore(cached_job, scratch("cold.xjl"));
  const TimedRun warm = timed_explore(cached_job, scratch("warm.xjl"));
  const double cache_speedup = warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;

  Table cache_table({"run", "wall s", "computed", "cache hits", "cache appends"});
  cache_table.add_row({"cold", Table::num(cold.seconds, 3),
                       std::to_string(cold.result.stats.computed),
                       std::to_string(cold.result.stats.cache_hits),
                       std::to_string(cold.result.stats.cache_appends)});
  cache_table.add_row({"warm", Table::num(warm.seconds, 3),
                       std::to_string(warm.result.stats.computed),
                       std::to_string(warm.result.stats.cache_hits),
                       std::to_string(warm.result.stats.cache_appends)});
  std::cout << cache_table << "\nWarm-cache speedup: " << Table::num(cache_speedup, 1)
            << "x (" << warm.result.stats.cache_hits << " evaluations served from "
            << "disk, " << warm.result.stats.computed << " recomputed).\n\n";

  // ---- Phase 3: determinism pins -----------------------------------------
  //
  // One reference run, then every variation that must not change a byte:
  // shard counts, a worker SIGKILLed mid-batch, and both cache states above.
  const TimedRun reference = timed_explore(mc_job(), scratch("ref.xjl"));
  const std::string want_front = front_json(reference.result);

  struct Pin {
    std::string name;
    bool front_ok = false;
    bool journal_ok = false;
  };
  std::vector<Pin> pins;
  const auto pin = [&](const std::string& name, const TimedRun& run) {
    pins.push_back({name, front_json(run.result) == want_front,
                    run.journal == reference.journal});
  };
  for (const std::size_t shards : {2ul, 4ul}) {
    dse::EngineConfig config = mc_job();
    config.shards = shards;
    pin(std::to_string(shards) + " shards",
        timed_explore(config, scratch("s" + std::to_string(shards) + ".xjl")));
  }
  {
    dse::EngineConfig config = mc_job();
    config.shards = 2;
    config.kill_shard_worker_after = 5;
    const TimedRun killed = timed_explore(config, scratch("kill.xjl"));
    pins.push_back({"2 shards, worker SIGKILLed",
                    front_json(killed.result) == want_front &&
                        killed.result.stats.shard_respawns >= 1,
                    killed.journal == reference.journal});
  }
  pin("cold cache", cold);
  pin("warm cache", warm);
  fs::remove(cache_path);

  bool all_identical = pool_identical;
  Table pin_table({"variation", "front JSON", "journal bytes"});
  for (const Pin& p : pins) {
    pin_table.add_row({p.name, p.front_ok ? "identical" : "DIVERGED",
                       p.journal_ok ? "identical" : "DIVERGED"});
    all_identical = all_identical && p.front_ok && p.journal_ok;
  }
  std::cout << pin_table;
  std::cout << "\nExpected shape: near-linear batch speedup (the virtual-cost points\n"
               "overlap across shards), a warm cache that recomputes nothing, and\n"
               "every variation bit-identical to the reference run.\n";

  if (!args.str("out").empty()) {
    std::ofstream json(args.str("out"));
    json << "{\n  \"bench\": \"dse_shards\",\n  \"batch\": {"
         << "\"points\": " << batch.size() << ", \"serial_s\": " << t_serial
         << ", \"pool1_s\": " << t_pool1 << ", \"pool4_s\": " << t_pool4
         << ", \"speedup_4_shards\": " << batch_speedup << "},\n  \"cache\": {"
         << "\"cold_s\": " << cold.seconds << ", \"warm_s\": " << warm.seconds
         << ", \"speedup\": " << cache_speedup
         << ", \"warm_computed\": " << warm.result.stats.computed
         << ", \"warm_hits\": " << warm.result.stats.cache_hits << "},\n  \"identical\": {";
    json << "\"pool_foms\": " << (pool_identical ? "true" : "false");
    for (const Pin& p : pins) {
      std::string key = p.name;
      for (char& c : key)
        if (c == ' ' || c == ',') c = '_';
      json << ", \"" << key << "\": " << (p.front_ok && p.journal_ok ? "true" : "false");
    }
    json << "}\n}\n";
    std::cout << "\nJSON written to " << args.str("out") << ".\n";
  }

  if (args.flag("shard-smoke")) {
    bool ok = true;
    if (batch_speedup < 1.5) {
      std::cerr << "shard-smoke: 4-shard batch speedup " << Table::num(batch_speedup, 2)
                << "x is below the 1.5x bar\n";
      ok = false;
    }
    if (cache_speedup < 10.0) {
      std::cerr << "shard-smoke: warm-cache speedup " << Table::num(cache_speedup, 2)
                << "x is below the 10x bar\n";
      ok = false;
    }
    if (warm.result.stats.computed != 0) {
      std::cerr << "shard-smoke: warm run recomputed " << warm.result.stats.computed
                << " evaluations (expected 0)\n";
      ok = false;
    }
    if (!all_identical) {
      std::cerr << "shard-smoke: a variation diverged from the reference run "
                   "(see table above)\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "\nshard-smoke: " << Table::num(batch_speedup, 1) << "x at 4 shards, "
              << Table::num(cache_speedup, 1)
              << "x warm cache, all variations bit-identical — gate passed.\n";
  }
  return 0;
}
