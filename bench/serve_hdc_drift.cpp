// Closed-loop serving under drift (ROADMAP item 5): an HDC classifier on
// FeFET CAM + RRAM encoder tiles served under sustained Poisson load while
// the devices age, compared across recalibration policies.
//
// Each policy runs the identical request stream against an identically
// seeded model; what differs is only when (and how) the policy intervenes.
// The table shows the throughput / latency / accuracy trade; the full
// accuracy-over-time and qps trajectories per policy go to
// BENCH_serving.json.  --serve-smoke runs a quick gate: the run completes,
// the no-recalibration baseline breaks the accuracy floor, the watchdog
// holds it, and the report checksum is identical at 1 and 8 threads.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "core/counters.hpp"
#include "serve/loop.hpp"
#include "serve/model.hpp"
#include "serve/policy.hpp"
#include "util/argparse.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace xlds;

namespace {

struct PolicyRun {
  std::string name;
  serve::ServingReport report;
};

std::unique_ptr<serve::RecalibrationPolicy> make_policy(const std::string& name,
                                                        const serve::ServingConfig& cfg) {
  // The watchdog family triggers at a guard margin above the SLO floor —
  // waiting for the floor itself to break would record the violation the
  // policy exists to prevent.  Backoffs re-arm after roughly a quarter
  // window refill.
  const double trigger = std::min(0.99, cfg.accuracy_floor + 0.03);
  const double backoff0 = 0.25 * static_cast<double>(cfg.accuracy_window) /
                          (cfg.target_utilisation / cfg.base_service_s);
  if (name == "none") return serve::make_no_recalibration();
  if (name == "scheduled") return serve::make_scheduled_refresh(0.6);
  if (name == "watchdog")
    return serve::make_accuracy_watchdog(trigger, cfg.floor_min_samples, backoff0,
                                         4.0 * backoff0);
  if (name == "spare-swap")
    return serve::make_spare_swap(trigger, cfg.floor_min_samples, backoff0, 4.0 * backoff0);
  if (name == "re-query")
    return serve::make_requery_escalation(trigger, cfg.floor_min_samples, 7);
  XLDS_REQUIRE_MSG(false, "unknown policy " << name);
  return nullptr;
}

serve::ServingReport run_policy(const std::string& name, const serve::ServingConfig& cfg,
                                std::uint64_t model_seed) {
  serve::ServedModelConfig mc;
  serve::ServedHdcModel model(mc, model_seed);
  auto policy = make_policy(name, cfg);
  return serve::ServingLoop(cfg).run(model, *policy);
}

void emit_json(const std::string& path, const serve::ServingConfig& cfg,
               const std::vector<PolicyRun>& runs) {
  std::ofstream json(path);
  json << "{\n  \"bench\": \"serve_hdc_drift\",\n"
       << "  \"total_requests\": " << cfg.total_requests << ",\n"
       << "  \"drift_time_scale\": " << cfg.drift_time_scale << ",\n"
       << "  \"accuracy_floor\": " << cfg.accuracy_floor << ",\n"
       << "  \"accuracy_window\": " << cfg.accuracy_window << ",\n"
       << "  \"seed\": " << cfg.seed << ",\n  \"policies\": [\n";
  for (std::size_t p = 0; p < runs.size(); ++p) {
    const serve::ServingReport& r = runs[p].report;
    json << "    {\"policy\": \"" << r.policy << "\", \"served\": " << r.served
         << ", \"degraded\": " << r.degraded << ", \"shed_admission\": " << r.shed_admission
         << ", \"shed_recal\": " << r.shed_recal << ", \"recal_events\": " << r.recal_events
         << ", \"spare_swaps\": " << r.spare_swaps
         << ", \"cam_cells_rewritten\": " << r.cam_cells_rewritten
         << ", \"xbar_cells_repaired\": " << r.xbar_cells_repaired
         << ", \"sustained_qps\": " << r.sustained_qps << ", \"latency_p50_s\": " << r.latency.p50
         << ", \"latency_p99_s\": " << r.latency.p99
         << ", \"serve_energy_j\": " << r.serve_energy_j
         << ", \"recal_energy_j\": " << r.recal_energy_j
         << ", \"overall_accuracy\": " << r.overall_accuracy
         << ", \"min_window_accuracy\": " << r.min_window_accuracy
         << ", \"floor_held\": " << (r.floor_held ? "true" : "false")
         << ", \"checksum\": " << r.checksum << ",\n     \"trajectory\": [";
    for (std::size_t i = 0; i < r.trajectory.size(); ++i) {
      const serve::TrajectoryPoint& pt = r.trajectory[i];
      json << (i == 0 ? "" : ", ") << "{\"t\": " << pt.t << ", \"accuracy\": " << pt.accuracy
           << ", \"qps\": " << pt.qps << ", \"votes\": " << pt.votes
           << ", \"device_age\": " << pt.device_age << "}";
    }
    json << "]}" << (p + 1 < runs.size() ? "," : "") << "\n";
  }
  const core::Profiler::ServeCounts sc = core::Profiler::serve();
  const core::Profiler::NodalCounts nc = core::Profiler::nodal();
  json << "  ],\n  \"profiler\": {\"requests_served\": " << sc.requests_served
       << ", \"requests_shed\": " << sc.requests_shed
       << ", \"requests_degraded\": " << sc.requests_degraded
       << ", \"recalibrations\": " << sc.recalibrations
       << ", \"cells_reprogrammed\": " << sc.cells_reprogrammed
       << ", \"nodal_factorizations\": " << nc.factorizations
       << ", \"nodal_incremental_updates\": " << nc.incremental_updates
       << ", \"nodal_updated_cells\": " << nc.updated_cells
       << ", \"nodal_update_declines\": " << nc.update_declines << "}\n}\n";
  std::cout << "\nJSON written to " << path << ".\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParse args("serve_hdc_drift",
                      "Sustained-load HDC serving under device drift, per recalibration policy");
  util::add_bench_options(args, /*default_seed=*/1, "BENCH_serving.json");
  args.add_option("requests", "requests per policy run", "4096");
  args.add_option("drift-scale", "device-seconds aged per virtual second", "");
  args.add_option("policies", "comma-separated subset of none,scheduled,watchdog,spare-swap,re-query",
                  "");
  args.add_flag("serve-smoke", "quick CI gate: baseline breaks the floor, watchdog holds it");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  util::apply_bench_options(args);

  serve::ServingConfig cfg;
  cfg.seed = args.uinteger("seed");
  cfg.total_requests = static_cast<std::size_t>(args.uinteger("requests"));
  if (args.flag("serve-smoke")) cfg.total_requests = 2048;
  if (!args.str("drift-scale").empty()) cfg.drift_time_scale = args.num("drift-scale");

  std::vector<std::string> names{"none", "scheduled", "watchdog", "spare-swap", "re-query"};
  if (!args.str("policies").empty()) {
    names.clear();
    std::string rest = args.str("policies");
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      names.push_back(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    }
  }
  core::Profiler::reset_serve();
  core::Profiler::reset_nodal();

  std::vector<PolicyRun> runs;
  Table table({"policy", "served", "shed", "degr", "recals", "qps", "p50 ms", "p99 ms",
               "acc", "min win acc", "floor"});
  for (const std::string& name : names) {
    PolicyRun run{name, run_policy(name, cfg, cfg.seed)};
    const serve::ServingReport& r = run.report;
    table.add_row({r.policy, std::to_string(r.served),
                   std::to_string(r.shed_admission + r.shed_recal), std::to_string(r.degraded),
                   std::to_string(r.recal_events + r.spare_swaps),
                   Table::num(r.sustained_qps, 1), Table::num(r.latency.p50 * 1e3, 2),
                   Table::num(r.latency.p99 * 1e3, 2), Table::num(r.overall_accuracy, 3),
                   Table::num(r.min_window_accuracy, 3), r.floor_held ? "held" : "BROKEN"});
    runs.push_back(std::move(run));
  }
  std::cout << table;
  std::cout << "\nExpected shape: the no-recalibration baseline decays through the accuracy\n"
               "floor as retention drift scrambles the stored hypervectors; scheduled and\n"
               "watchdog refreshes restore it (the watchdog paying only when the floor is\n"
               "actually threatened); the spare swap holds accuracy without a service\n"
               "window; majority re-query alone averages out sensing noise but cannot\n"
               "undo persistent drift.\n";

  if (!args.str("out").empty()) emit_json(args.str("out"), cfg, runs);

  if (args.flag("serve-smoke")) {
    const auto find = [&](const std::string& name) -> const serve::ServingReport& {
      for (const PolicyRun& r : runs)
        if (r.name == name) return r.report;
      XLDS_REQUIRE_MSG(false, "missing policy run " << name);
      return runs.front().report;
    };
    const serve::ServingReport& none = find("none");
    const serve::ServingReport& watchdog = find("watchdog");
    bool ok = true;
    if (none.floor_held) {
      std::cerr << "serve-smoke: baseline held the floor (min window acc "
                << none.min_window_accuracy << ") — drift too weak to gate on\n";
      ok = false;
    }
    if (!watchdog.floor_held) {
      std::cerr << "serve-smoke: watchdog broke the floor (min window acc "
                << watchdog.min_window_accuracy << ")\n";
      ok = false;
    }
    // Bit-identity across thread counts: rerun the watchdog at 1 and 8
    // threads.  Floor dynamics don't matter here, so a short run suffices.
    serve::ServingConfig tcfg = cfg;
    tcfg.total_requests = 768;
    set_parallel_threads(1);
    const serve::ServingReport w1 = run_policy("watchdog", tcfg, cfg.seed);
    set_parallel_threads(8);
    const serve::ServingReport w8 = run_policy("watchdog", tcfg, cfg.seed);
    set_parallel_threads(0);
    if (w1.checksum != w8.checksum) {
      std::cerr << "serve-smoke: 1-thread and 8-thread runs diverge (checksums " << w1.checksum
                << " vs " << w8.checksum << ")\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "\nserve-smoke: baseline breaks the floor, watchdog holds it, runs are\n"
                 "thread-count invariant — gate passed.\n";
  }
  return 0;
}
