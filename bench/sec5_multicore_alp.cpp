// Sec. V / introduction's "accelerator-level parallelism" — how many cores
// can one analog crossbar engine feed?
//
// N cores each run the same CNN inference and share ONE crossbar
// accelerator over MMIO.  Per-core throughput falls as queueing grows; the
// saturation point is the sizing answer ("accelerator-level parallelism",
// Hill & Reddi) that single-core simulation cannot produce.
#include <iostream>

#include "sim/multicore.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "xbar/crossbar.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Sec. V — many-core sharing one crossbar accelerator",
               "per-core CNN inference throughput vs core count (gem5-X-style study)");

  Rng rng(1);
  xbar::CrossbarConfig tile;
  tile.rows = 64;
  tile.cols = 64;
  tile.apply_variation = false;
  tile.read_noise_rel = 0.0;

  sim::MulticoreConfig cfg;
  cfg.core = sim::CoreConfig{.freq_hz = 2.0e9, .ipc = 2.0, .macs_per_cycle = 4.0};
  cfg.l1 = sim::CacheConfig{.name = "L1", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 4,
                            .hit_latency_s = 0.5e-9};
  cfg.l2 = sim::CacheConfig{.name = "L2", .size_bytes = 2 * 1024 * 1024, .line_bytes = 64,
                            .ways = 8, .hit_latency_s = 5e-9};
  cfg.accel.present = true;
  cfg.accel.tile_cost = xbar::Crossbar(tile, rng).mvm_cost();
  cfg.accel.parallel_tiles = 16;

  const sim::Program cnn = sim::make_cnn_program(sim::cifar_cnn(6));

  Table table({"cores", "makespan", "inferences/s (total)", "per-core efficiency",
               "accel wait (total)", "energy/inference"});
  double throughput_1 = 0.0;
  for (std::size_t cores : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
                            std::size_t{16}}) {
    cfg.cores = cores;
    sim::MulticoreMachine machine(cfg);
    const sim::MulticoreStats s = machine.run(std::vector<sim::Program>(cores, cnn));
    const double throughput = static_cast<double>(cores) / s.total_time;
    if (cores == 1) throughput_1 = throughput;
    table.add_row({std::to_string(cores), si_format(s.total_time, "s", 2),
                   Table::num(throughput, 0),
                   Table::num(100.0 * throughput / (throughput_1 * cores), 1) + " %",
                   si_format(s.accel_wait_time, "s", 2),
                   si_format(s.total_energy / cores, "J", 2)});
  }
  std::cout << table;
  std::cout << "\nExpected shape: near-100 % per-core efficiency while the accelerator has\n"
               "headroom, then queueing time grows and efficiency rolls off — the point\n"
               "where a second crossbar macro (or more parallel tiles) pays for itself.\n"
               "This is the accelerator-level-parallelism sizing the paper says system-\n"
               "level simulation must answer before committing silicon.\n";
  return 0;
}
