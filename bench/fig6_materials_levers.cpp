// Fig. 6 — connecting materials-level innovation to application-level impact.
//
// The paper's closing flow: top-down profiling says what the application
// needs (write-heavy? read-heavy? search-heavy?); bottom-up materials levers
// say what the device could become.  This bench applies each spin-device
// lever to the MRAM preset (and each ferroelectric lever to the FeFET
// preset) and re-runs the architecture lanes to see which lever moves the
// application-facing numbers most.
#include <iostream>

#include "device/materials.hpp"
#include "evacam/evacam.hpp"
#include "nvsim/explorer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace xlds;

namespace {

/// A write-heavy online-learning profile (prioritises endurance/write cost)
/// and a search-heavy inference profile (prioritises the CAM lane).
struct LaneReport {
  double write_energy_pj;   ///< NVM lane: per-word write
  double lifetime_years;    ///< NVM lane under write traffic
  std::size_t max_columns;  ///< CAM lane matchline width
  double search_energy_pj;  ///< CAM lane whole-memory search
};

LaneReport lanes_for(device::DeviceKind kind, const device::DeviceTraits& traits) {
  LaneReport rep{};

  nvsim::NvRamConfig mem;
  mem.device = kind;
  mem.tech = "40nm";
  mem.capacity_bits = 2ull * 1024 * 1024;
  mem.device_override = traits;
  nvsim::TrafficProfile traffic;
  traffic.write_bytes_per_s = 2e6;  // online-learning write pressure
  traffic.read_bytes_per_s = 50e6;
  const nvsim::ExplorerReport nvm = nvsim::NvmExplorer(mem, {}, traffic).report();
  rep.write_energy_pj = to_pj(nvm.memory.write_energy);
  rep.lifetime_years = nvm.lifetime_s / (365.0 * 24 * 3600);

  evacam::CamDesignSpec cam;
  cam.device = kind;
  cam.cell = kind == device::DeviceKind::kMram ? evacam::CellType::k4T2R
                                               : evacam::CellType::k2FeFET;
  cam.tech = "40nm";
  cam.words = 1024;
  cam.bits = 64;
  cam.subarray_rows = 128;
  cam.subarray_cols = 64;
  cam.device_override = traits;
  const evacam::CamFom fom = evacam::EvaCam(cam).evaluate();
  rep.max_columns = fom.max_ml_columns;
  rep.search_energy_pj = to_pj(fom.search_energy);
  return rep;
}

void lever_table(const char* title, device::DeviceKind kind,
                 const std::vector<device::MaterialsLever>& levers) {
  print_banner(std::cout, title, "");
  Table table({"lever", "mechanism", "write E/word", "lifetime @2MB/s", "CAM max cols",
               "CAM search E"});
  const device::DeviceTraits base = device::traits(kind);
  auto add = [&](const std::string& name, const std::string& mech,
                 const device::DeviceTraits& traits) {
    const LaneReport rep = lanes_for(kind, traits);
    table.add_row({name, mech, Table::num(rep.write_energy_pj, 1) + " pJ",
                   rep.lifetime_years > 300.0 ? ">300 y"
                                              : Table::num(rep.lifetime_years, 1) + " y",
                   std::to_string(rep.max_columns),
                   Table::num(rep.search_energy_pj, 1) + " pJ"});
  };
  add("(baseline)", "", base);
  for (const auto& lever : levers) add(lever.name, lever.mechanism, apply_lever(base, lever));
  std::cout << table;
}

}  // namespace

int main() {
  lever_table("Fig. 6 — spin-device levers through the MRAM lanes",
              device::DeviceKind::kMram, device::spin_device_levers());
  lever_table("Fig. 6 — ferroelectric levers through the FeFET lanes",
              device::DeviceKind::kFeFet, device::ferroelectric_levers());

  std::cout << "\nReading the table top-down (the paper's flow): a write-heavy application\n"
               "cares about the SOT/VCMA/BEOL-interlayer rows (write energy, lifetime); a\n"
               "search-heavy one about high-TMR / domain engineering (on/off ratio ->\n"
               "matchline width).  The same materials lever can matter enormously for one\n"
               "application profile and not at all for another — which is exactly why the\n"
               "paper argues the two directions must be coupled.\n";
  return 0;
}
