// Fig. 3G — cell-state distributions and programming-variation tolerance.
//
// Paper claims: (i) programmed states of a multi-level cell form overlapping
// Gaussian distributions — the more levels, the more overlap; (ii) HDC
// classification accuracy is flat up to the experimentally observed sigma
// (94 mV) even for 3-bit cells, because no single hypervector element
// carries significant weight.
#include <iostream>
#include <memory>

#include "device/fefet.hpp"
#include "hdc/cam_inference.hpp"
#include "hdc/model.hpp"
#include "kernels/sampler.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/dataset.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Fig. 3G-i — state overlap of multi-level FeFET cells",
               "paper: measured state distributions overlap; window shrinks "
               "with level count");

  Table overlap({"bits/cell", "levels", "window (mV)", "P(level error) @ 94 mV sigma",
                 "Monte-Carlo check"});
  for (int bits : {1, 2, 3}) {
    device::FeFetParams params;
    params.bits = bits;
    params.sigma_program = 0.094;
    device::FeFetModel model(params);
    const int mid = params.levels() / 2;
    Rng rng(7);
    constexpr std::size_t kTrials = 20000;
    constexpr std::size_t kChunk = 2000;
    // Chunked Monte Carlo on forked RNG streams: deterministic at any
    // XLDS_THREADS.  Each chunk draws its programmed-V_th block with the
    // batched inverse-CDF sampler and classifies it in one vectorised
    // readback pass — the kernels-layer fast path (same estimator, its own
    // documented draw sequence).
    const double mid_vth = model.level_vth(mid);
    std::vector<std::size_t> chunk_errors((kTrials + kChunk - 1) / kChunk, 0);
    parallel_for_rng(rng, kTrials, kChunk,
                     [&](Rng& trial_rng, std::size_t begin, std::size_t end, std::size_t ci) {
      std::vector<double> vth(end - begin);
      kernels::fill_normal_fast(trial_rng, vth.data(), vth.size(), mid_vth,
                                params.sigma_program);
      chunk_errors[ci] = model.readback_errors(mid, vth.data(), vth.size());
    });
    std::size_t errors = 0;
    for (std::size_t e : chunk_errors) errors += e;
    overlap.add_row({std::to_string(bits), std::to_string(params.levels()),
                     Table::num(params.level_window() * 1e3, 0),
                     Table::num(model.level_error_probability(mid), 4),
                     Table::num(static_cast<double>(errors) / kTrials, 4)});
  }
  std::cout << overlap;

  print_banner(std::cout, "Fig. 3G-ii — accuracy vs programming-variation sigma",
               "paper: no degradation at the measured 94 mV for any precision");

  const workload::Dataset ds = workload::make_named_dataset("language-like", 44);
  constexpr std::size_t kHvDim = 1024;

  Table table({"sigma (mV)", "1-bit CAM", "2-bit CAM", "3-bit CAM"});
  std::vector<std::vector<std::string>> rows;
  const std::vector<double> sigmas = {0.0, 0.025, 0.050, 0.094, 0.150, 0.250};
  std::vector<std::vector<double>> acc(sigmas.size(), std::vector<double>(3, 0.0));

  // Train the three precision variants concurrently (independent seeds), then
  // sweep the full (bits x sigma) grid in parallel — every cell owns its CAM
  // arrays and RNG, so the grid is embarrassingly parallel and deterministic.
  const auto models = parallel_map<std::unique_ptr<hdc::HdcModel>>(3, [&](std::size_t i) {
    const int bits = static_cast<int>(i) + 1;
    Rng rng(60 + bits);
    hdc::HdcConfig cfg;
    cfg.hv_dim = kHvDim;
    cfg.element_bits = bits;
    auto model = std::make_unique<hdc::HdcModel>(cfg, ds.dim, ds.n_classes, rng);
    model->train(ds.train_x, ds.train_y);
    return model;
  });

  const auto cell_acc = parallel_map<double>(3 * sigmas.size(), [&](std::size_t idx) {
    const int bits = static_cast<int>(idx / sigmas.size()) + 1;
    const std::size_t s = idx % sigmas.size();
    hdc::CamInferenceConfig hw;
    hw.subarray.fefet.bits = bits;
    hw.subarray.fefet.sigma_program = sigmas[s];
    hw.subarray.cols = 128;
    hw.subarray.apply_variation = sigmas[s] > 0.0;
    hw.aggregation = cam::Aggregation::kSumSensed;
    Rng hw_rng(70 + bits);
    const hdc::HdcCamInference inf(*models[bits - 1], hw, hw_rng);
    return inf.accuracy(ds.test_x, ds.test_y);
  });
  for (int bits = 1; bits <= 3; ++bits)
    for (std::size_t s = 0; s < sigmas.size(); ++s)
      acc[s][bits - 1] = cell_acc[(bits - 1) * sigmas.size() + s];
  for (std::size_t s = 0; s < sigmas.size(); ++s) {
    table.add_row({Table::num(sigmas[s] * 1e3, 0), Table::num(acc[s][0], 3),
                   Table::num(acc[s][1], 3), Table::num(acc[s][2], 3)});
  }
  std::cout << table;
  std::cout << "\nExpected shape: flat accuracy through 94 mV for all precisions (HDC's\n"
               "holographic robustness); degradation appears only at sigma well beyond\n"
               "the measured value, first for the 3-bit cells (smallest windows).\n";
  return 0;
}
