// Ablation — HDC encoding scheme: random projection (crossbar-mappable MVM)
// vs record-based ID (x) LEVEL binding (MVM-free).
//
// Fig. 1D's point: the *same* task can be served by algorithm variants with
// fundamentally different compute, which map to different hardware.  The
// projection encoder wants a crossbar; the record encoder wants nothing but
// adds/multiplies — so the architecture choice flips with the encoder.
#include <iostream>

#include "hdc/model.hpp"
#include "util/table.hpp"
#include "workload/dataset.hpp"

using namespace xlds;

namespace {

double accuracy_for(const workload::Dataset& ds, hdc::EncoderKind encoder, std::size_t hv_dim,
                    int bits) {
  Rng rng(1200);
  hdc::HdcConfig cfg;
  cfg.hv_dim = hv_dim;
  cfg.element_bits = bits;
  cfg.encoder = encoder;
  hdc::HdcModel model(cfg, ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  return model.accuracy(ds.test_x, ds.test_y);
}

}  // namespace

int main() {
  print_banner(std::cout, "Ablation — HDC encoding scheme (projection vs record)",
               "same task, different compute kernels, different hardware mapping");

  Table table({"dataset", "HV length", "bits", "random projection", "ID x LEVEL record"});
  for (const char* name : {"isolet-like", "language-like"}) {
    const workload::Dataset ds = workload::make_named_dataset(name, 1201);
    for (std::size_t hv_dim : {std::size_t{1024}, std::size_t{4096}}) {
      for (int bits : {1, 3}) {
        table.add_row(
            {name, std::to_string(hv_dim), std::to_string(bits),
             Table::num(accuracy_for(ds, hdc::EncoderKind::kRandomProjection, hv_dim, bits), 3),
             Table::num(accuracy_for(ds, hdc::EncoderKind::kIdLevel, hv_dim, bits), 3)});
      }
    }
  }
  std::cout << table;
  std::cout << "\nExpected shape: on compact feature spaces (language-like) the MVM-free\n"
               "record encoder reaches parity at high dimensionality; on wide, low-SNR-\n"
               "per-feature inputs (isolet-like) it trails the projection encoder, whose\n"
               "dense mixing is exactly what a crossbar accelerates.  Encoding choice is\n"
               "workload-dependent and drags the hardware choice with it — the\n"
               "algorithm/architecture coupling the paper's Fig. 1D emphasises.\n";
  return 0;
}
