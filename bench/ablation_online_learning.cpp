// Sec. VII's profiling question, quantified: "are data traffic patterns
// write heavy, thereby prioritizing device endurance and/or write latency?"
//
// Sweeps the AM update rate (writes per inference — 0 for frozen models,
// ~1+ for online/continual learning) and reports, per device: lifetime at a
// deployment inference rate, the write-time overhead added to each
// inference, and the evaluator's feasibility verdict.
#include <cmath>
#include <iostream>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"
#include "nvsim/explorer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Ablation — write traffic vs device endurance (Sec. VII profiling)",
               "AM update rate sweep; 100 inferences/s deployment, 128-bit words");

  constexpr double kInferencesPerSecond = 100.0;
  constexpr double kYear = 365.0 * 24 * 3600;

  Table table({"device", "writes/inference", "lifetime", "write overhead/inference",
               "evaluator verdict"});
  const core::Evaluator evaluator;
  for (device::DeviceKind dev : {device::DeviceKind::kRram, device::DeviceKind::kPcm,
                                 device::DeviceKind::kFeFet, device::DeviceKind::kMram,
                                 device::DeviceKind::kFlash}) {
    for (double writes : {0.0, 0.1, 1.0, 10.0}) {
      const auto& traits = device::traits(dev);
      // Wear-levelled over a 1024-entry AM: per-cell write rate.
      const double cell_writes_per_s = writes * kInferencesPerSecond / 1024.0;
      const double lifetime_s = cell_writes_per_s > 0.0
                                    ? traits.endurance_cycles / cell_writes_per_s
                                    : HUGE_VAL;
      const std::string lifetime = !std::isfinite(lifetime_s) ? "no writes"
                                   : lifetime_s > 300.0 * kYear
                                       ? ">300 y"
                                       : Table::num(lifetime_s / kYear, 2) + " y";

      core::AppProfile profile = core::profile_for("omniglot-like");
      profile.writes_per_inference = writes;
      core::DesignPoint point;
      point.device = dev;
      point.arch = core::ArchKind::kCamXbarHybrid;
      point.algo = core::AlgoKind::kMann;
      std::string verdict;
      if (auto why = core::incompatibility(point)) {
        verdict = "culled: " + *why;
      } else {
        const core::Fom fom = evaluator.evaluate(point, profile);
        verdict = fom.feasible ? "feasible" : fom.note;
      }
      table.add_row({device::to_string(dev), Table::num(writes, 1), lifetime,
                     si_format(writes * traits.write_latency, "s", 2), verdict});
    }
  }
  std::cout << table;
  std::cout << "\nExpected shape: frozen models make every NVM viable; at 1-10 writes per\n"
               "inference flash falls off the endurance cliff (and its 10 us writes poison\n"
               "the latency budget), PCM/RRAM survive on wear-levelling headroom, and\n"
               "MRAM/FeFET are untroubled — write-heavy profiles prioritise endurance\n"
               "and write latency exactly as the Sec.-VII checklist says.\n";
  return 0;
}
