// Fig. 5 — validation of the Eva-CAM analytical model against fabricated
// NV-CAM chips.
//
// Prints the same rows as the paper's table: published silicon value
// ("Actual"), the paper tool's projection, this reimplementation's
// projection, and the errors.  The paper's acceptance band is ~±20 % against
// silicon.
#include <iostream>
#include <optional>

#include "evacam/evacam.hpp"
#include "evacam/presets.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace xlds;

namespace {

std::string opt_num(const std::optional<double>& v, int precision = 1) {
  return v ? Table::num(*v, precision) : "-";
}

std::string err_vs(const std::optional<double>& reference, double ours) {
  if (!reference || *reference == 0.0) return "-";
  return Table::num(100.0 * (ours - *reference) / *reference, 1) + " %";
}

}  // namespace

int main() {
  print_banner(std::cout, "Fig. 5 — Eva-CAM validation against fabricated NV-CAMs",
               "columns: silicon ('actual'), the paper tool, this model, errors");

  Table table({"chip", "FoM", "actual", "paper Eva-CAM", "this model", "err vs actual",
               "err vs paper tool"});

  for (const auto& chip : evacam::fig5_chips()) {
    const evacam::CamFom fom = evacam::EvaCam(chip.spec).evaluate();
    const double area = to_um2(fom.area_m2);
    const double lat = to_ns(fom.search_latency);
    const double energy = to_pj(fom.search_energy);

    if (chip.area_um2.actual || chip.area_um2.paper_evacam) {
      table.add_row({chip.name, "area (um^2)", opt_num(chip.area_um2.actual, 0),
                     opt_num(chip.area_um2.paper_evacam, 0), Table::num(area, 0),
                     err_vs(chip.area_um2.actual, area),
                     err_vs(chip.area_um2.paper_evacam, area)});
    }
    if (chip.search_latency_ns.actual || chip.search_latency_ns.paper_evacam) {
      table.add_row({chip.name, "search latency (ns)", opt_num(chip.search_latency_ns.actual, 2),
                     opt_num(chip.search_latency_ns.paper_evacam, 2), Table::num(lat, 2),
                     err_vs(chip.search_latency_ns.actual, lat),
                     err_vs(chip.search_latency_ns.paper_evacam, lat)});
    }
    if (chip.search_energy_pj.actual || chip.search_energy_pj.paper_evacam) {
      table.add_row({chip.name, "search energy (pJ)", opt_num(chip.search_energy_pj.actual, 1),
                     opt_num(chip.search_energy_pj.paper_evacam, 1), Table::num(energy, 1),
                     err_vs(chip.search_energy_pj.actual, energy),
                     err_vs(chip.search_energy_pj.paper_evacam, energy)});
    }
  }
  std::cout << table;

  // The Eva-CAM extension the paper describes: sense-margin-driven array
  // sizing (mismatch limit / max matchline columns) per device technology.
  print_banner(std::cout, "Eva-CAM extension — sense-margin-limited array sizing",
               "Sec. VI: on/off ratio bounds the matchline width and the BE/TH "
               "mismatch limit");
  Table sizing({"design", "on/off ratio", "mismatch limit", "max matchline columns"});
  for (const char* name : {"rram-2t2r-40nm", "pcm-2t2r-90nm", "mram-4t2r-90nm",
                           "fefet-2t-28nm"}) {
    const evacam::CamDesignSpec spec = evacam::preset_spec(name);
    const evacam::EvaCam tool(spec);
    const evacam::CamFom fom = tool.evaluate();
    sizing.add_row({name, Table::num(device::traits(spec.device).on_off_ratio(), 1),
                    std::to_string(fom.mismatch_limit), std::to_string(fom.max_ml_columns)});
  }
  std::cout << sizing;
  std::cout << "\nNotes: the MRAM row's latency unit prints as 'ps' in the paper's table; we\n"
               "read it as ns (a sub-3 ps CAM search is not physical and the paper's own\n"
               "error column is unit-independent). Expected: every 'this model' projection\n"
               "within ~±20-35 % of the published values; MRAM's tiny on/off ratio crushes\n"
               "its matchline width, FeFET/RRAM support wide arrays.\n";
  return 0;
}
