// Fig. 3D — multi-bit FeFET CAM cell transfer curve.
//
// Paper claim: a 3-bit (8-state) CAM cell conducts minimally when the input
// voltage matches the programmed state, and its conductance grows
// *quadratically* as the query deviates — mimicking the squared-Euclidean
// distance function.
#include <iostream>

#include "cam/fefet_cam.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Fig. 3D — FeFET CAM cell conductance vs input voltage",
               "paper: valley at the programmed state, quadratic growth with "
               "deviation (squared-Euclidean proxy)");

  cam::FeFetCamConfig cfg;
  cfg.fefet.bits = 3;
  cfg.rows = 1;
  cfg.cols = 1;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  Rng rng(1);
  cam::FeFetCamArray cell(cfg, rng);
  const auto& fefet = cell.device_model();
  const int stored = 4;  // state 100 of 8
  cell.write_word(0, {stored});

  // Voltage sweep across the whole search window.
  Table curve({"V_in (V)", "level offset", "cell conductance (uS)"});
  const double v_lo = fefet.search_voltage(0) - 0.05;
  const double v_hi = fefet.search_voltage(7) + 0.05;
  for (int i = 0; i <= 24; ++i) {
    const double v = v_lo + (v_hi - v_lo) * i / 24.0;
    const double offset = (v - fefet.search_voltage(stored)) / fefet.params().level_window();
    curve.add_row({Table::num(v, 3), Table::num(offset, 2),
                   Table::num(cell.cell_transfer_conductance(v, stored) * 1e6, 4)});
  }
  std::cout << curve;

  // Quadratic check at the discrete search levels.
  Table quad({"query level", "|delta|", "sensed distance", "sensed / delta^2"});
  for (int q = 0; q < 8; ++q) {
    const auto res = cell.search({q});
    const int delta = std::abs(q - stored);
    quad.add_row({std::to_string(q), std::to_string(delta), Table::num(res.sensed_distance[0], 3),
                  delta ? Table::num(res.sensed_distance[0] / (delta * delta), 3) : "-"});
  }
  std::cout << '\n' << quad;
  std::cout << "\nExpected shape: sensed/delta^2 roughly constant (slightly super-quadratic\n"
               "from the sub-threshold off-margin), valley exactly at the stored level.\n";
  return 0;
}
