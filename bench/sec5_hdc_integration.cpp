// Sec. V meets Sec. III: what does a *crossbar-only* SoC integration buy the
// HDC workload — and why the case study insists on a CAM next to it.
//
// The HDC inference program runs on the system simulator three ways: core
// only, core + crossbar engine (encode offloads, search cannot — it needs a
// CAM), and core + crossbar + CAM engine (both offload).  The middle row's
// Amdahl cap IS the paper's argument for the XBar+CAM hybrid.
#include <iostream>

#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "xbar/crossbar.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Sec. V x Sec. III — HDC on a crossbar-only SoC vs + CAM engine",
               "why encode-only offload caps out: the search stays on the core");

  Rng rng(1);
  xbar::CrossbarConfig tile;
  tile.rows = 64;
  tile.cols = 64;
  tile.apply_variation = false;
  tile.read_noise_rel = 0.0;
  sim::AcceleratorConfig accel;
  accel.present = true;
  accel.tile_cost = xbar::Crossbar(tile, rng).mvm_cost();

  const sim::CoreConfig core{.freq_hz = 2.0e9, .ipc = 2.0, .macs_per_cycle = 4.0};
  const sim::CacheConfig l1{.name = "L1", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 4,
                            .hit_latency_s = 0.5e-9};
  const sim::CacheConfig l2{.name = "L2", .size_bytes = 1024 * 1024, .line_bytes = 64, .ways = 8,
                            .hit_latency_s = 5e-9};

  sim::HdcTraceSpec spec;  // isolet-class HDC, 16 queries

  Table table({"integration", "total time", "core MVM time", "accel busy", "offloads",
               "speedup vs core"});
  double t_core = 0.0;
  auto run = [&](const char* name, bool with_accel, bool search_offloadable) {
    spec.search_offloadable = search_offloadable;
    const sim::Program prog = sim::make_hdc_program(spec);
    sim::Machine machine(core, l1, l2, sim::DramConfig{},
                         with_accel ? accel : sim::AcceleratorConfig{});
    const sim::RunStats s = machine.run(prog);
    if (!with_accel) t_core = s.total_time;
    table.add_row({name, si_format(s.total_time, "s", 2), si_format(s.mvm_core_time, "s", 2),
                   si_format(s.accel_time, "s", 2), std::to_string(s.offloads),
                   Table::num(t_core / s.total_time, 1) + "x"});
  };
  run("core only", false, false);
  run("+ crossbar (encode offloads)", true, false);
  run("+ crossbar + CAM (search offloads too)", true, true);

  std::cout << table;
  std::cout << "\nExpected shape: the crossbar-only integration is Amdahl-capped by the\n"
               "search left on the core (the ~50 % share Fig. 3E measured); adding an\n"
               "associative-search engine releases it — the system-level restatement of\n"
               "why Sec. III builds the XBar+CAM hybrid rather than a crossbar alone.\n";
  return 0;
}
