// Micro-benchmark — factorization-cached nodal IR-drop solver.
//
// Measures the repeated-query cost of the kNodal readout across array sizes
// and solve strategies:
//   * GS cold    — red-black Gauss-Seidel from a flat initial guess (the
//                  pre-cache behaviour: every query pays the full iteration).
//   * GS warm    — Gauss-Seidel warm-started from the previous iterate.
//   * factorized — one cached Cholesky factorization per programming state,
//                  a forward/back substitution per query.
//   * batched    — the factorized multi-RHS path (readout_batch), which also
//                  parallelises substitutions across the batch.
//
// Emits BENCH_nodal_solver.json.  `--nodal-smoke` is the CI gate: it fails
// (nonzero exit) if the factorized repeated-query path is not faster than
// cold-start Gauss-Seidel — the acceptance bar is 10x on 64x64; the gate
// enforces a conservative >= 2x so CI jitter cannot mask a real regression
// while a broken cache (or an accidentally disabled direct path) still trips
// it instantly.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/argparse.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xbar/crossbar.hpp"

using namespace xlds;

namespace {

xbar::CrossbarConfig base_config(std::size_t n) {
  xbar::CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.ir_drop = xbar::IrDropMode::kNodal;
  cfg.nodal_max_iters = 50000;  // let the iterative reference converge
  return cfg;
}

MatrixD half_loaded(std::size_t n, const device::RramParams& p, std::uint64_t seed) {
  MatrixD g(n, n, p.g_min);
  Rng fill(seed);
  for (double& v : g.data())
    if (fill.bernoulli(0.5)) v = p.g_max;
  return g;
}

MatrixD query_batch(std::size_t batch, std::size_t n, std::uint64_t seed) {
  MatrixD xs(batch, n);
  Rng rng(seed);
  for (double& v : xs.data()) v = rng.uniform(0.05, 0.95);
  return xs;
}

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SizeResult {
  std::size_t n = 0;
  std::size_t queries = 0;
  double gs_cold_s = 0.0;      ///< total, `queries` independent cold solves
  double gs_warm_s = 0.0;      ///< total, warm-started repeated solves
  double direct_build_s = 0.0; ///< one-time factorization (first query)
  double direct_query_s = 0.0; ///< total, `queries` cached substitutions
  double batch_s = 0.0;        ///< one readout_batch over `queries` vectors
  double max_dev = 0.0;        ///< max |factorized - GS cold| column current, A
  double gs_tol_current = 0.0; ///< GS accuracy in current units (see below)

  double speedup_repeated() const {
    return direct_query_s > 0.0 ? gs_cold_s / direct_query_s : 0.0;
  }
  double speedup_batched() const { return batch_s > 0.0 ? gs_cold_s / batch_s : 0.0; }
};

SizeResult run_size(std::size_t n, std::size_t queries, std::uint64_t seed) {
  SizeResult res;
  res.n = n;
  res.queries = queries;
  const MatrixD g = half_loaded(n, device::RramParams{}, seed);
  const MatrixD xs = query_batch(queries, n, seed + 1);

  // --- Gauss-Seidel, cold start every query (fresh instance per query kills
  // both the warm-start iterate and any factorization). --------------------
  auto gs_cfg = base_config(n);
  gs_cfg.nodal_direct = false;
  gs_cfg.nodal_warm_start = false;
  std::vector<std::vector<double>> gs_currents(queries);
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t q = 0; q < queries; ++q) {
      Rng rng(seed + 2);
      xbar::Crossbar xb(gs_cfg, rng);
      xb.program_conductances(g);
      const std::vector<double> x(xs.row_data(q), xs.row_data(q) + n);
      gs_currents[q] = xb.column_currents(x);
    }
    res.gs_cold_s = seconds_since(t0);
  }

  // --- Gauss-Seidel, warm-started across the query stream. ----------------
  {
    auto cfg = base_config(n);
    cfg.nodal_direct = false;
    cfg.nodal_warm_start = true;
    Rng rng(seed + 2);
    xbar::Crossbar xb(cfg, rng);
    xb.program_conductances(g);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t q = 0; q < queries; ++q) {
      const std::vector<double> x(xs.row_data(q), xs.row_data(q) + n);
      (void)xb.column_currents(x);
    }
    res.gs_warm_s = seconds_since(t0);
  }

  // --- factorized: one build, then repeated single-query substitutions. ---
  {
    Rng rng(seed + 2);
    xbar::Crossbar xb(base_config(n), rng);
    xb.program_conductances(g);
    const std::vector<double> x0(xs.row_data(0), xs.row_data(0) + n);
    const auto tb = std::chrono::steady_clock::now();
    (void)xb.column_currents(x0);  // factorizes lazily
    res.direct_build_s = seconds_since(tb);

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t q = 0; q < queries; ++q) {
      const std::vector<double> x(xs.row_data(q), xs.row_data(q) + n);
      const auto i = xb.column_currents(x);
      for (std::size_t c = 0; c < n; ++c)
        res.max_dev = std::max(res.max_dev, std::abs(i[c] - gs_currents[q][c]));
    }
    res.direct_query_s = seconds_since(t0);
  }

  // --- factorized, batched multi-RHS. --------------------------------------
  {
    Rng rng(seed + 2);
    xbar::Crossbar xb(base_config(n), rng);
    xb.program_conductances(g);
    const std::vector<double> x0(xs.row_data(0), xs.row_data(0) + n);
    (void)xb.column_currents(x0);  // factorize outside the timed region
    const auto t0 = std::chrono::steady_clock::now();
    const MatrixD out = xb.readout_batch(xs);
    res.batch_s = seconds_since(t0);
    (void)out;
  }

  // GS accuracy in current units: the iterative reference only locates node
  // voltages to ~tol / (1 - rho) — the last-update criterion times the
  // convergence-rate amplification, which grows as ~n^2/2 for red-black
  // sweeps of an n x n resistor grid (a couple thousand at 64x64) — so it is
  // the yardstick the factorized deviation must sit within.  A full column
  // of LRS cells converts the voltage scale to current.
  const device::RramParams p;
  const double gs_amplification = 0.5 * static_cast<double>(n) * static_cast<double>(n);
  res.gs_tol_current = static_cast<double>(n) * p.g_max * gs_amplification *
                       xbar::kNodalTolRel * gs_cfg.read_voltage;
  return res;
}

void print_results(const std::vector<SizeResult>& results) {
  Table table({"array", "queries", "GS cold", "GS warm", "factorize", "per query",
               "batched", "speedup", "batched speedup", "max dev"});
  for (const SizeResult& r : results) {
    table.add_row({std::to_string(r.n) + "x" + std::to_string(r.n), std::to_string(r.queries),
                   Table::num(r.gs_cold_s * 1e3, 1) + " ms",
                   Table::num(r.gs_warm_s * 1e3, 1) + " ms",
                   Table::num(r.direct_build_s * 1e3, 1) + " ms",
                   Table::num(r.direct_query_s * 1e3 / static_cast<double>(r.queries), 2) + " ms",
                   Table::num(r.batch_s * 1e3, 1) + " ms",
                   Table::num(r.speedup_repeated(), 1) + "x",
                   Table::num(r.speedup_batched(), 1) + "x",
                   Table::num(r.max_dev * 1e9, 2) + " nA"});
  }
  std::cout << table;
}

void emit_json(const std::vector<SizeResult>& results) {
  std::ofstream json("BENCH_nodal_solver.json");
  json << "{\n"
       << "  \"bench\": \"nodal_solver\",\n"
       << "  \"threads\": " << parallel_thread_count() << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json << "    {\"array\": " << r.n << ", \"queries\": " << r.queries
         << ", \"gs_cold_seconds\": " << r.gs_cold_s
         << ", \"gs_warm_seconds\": " << r.gs_warm_s
         << ", \"factorize_seconds\": " << r.direct_build_s
         << ", \"factorized_repeated_seconds\": " << r.direct_query_s
         << ", \"factorized_batched_seconds\": " << r.batch_s
         << ", \"speedup_repeated\": " << r.speedup_repeated()
         << ", \"speedup_batched\": " << r.speedup_batched()
         << ", \"max_column_current_deviation_amps\": " << r.max_dev
         << ", \"gs_tolerance_amps\": " << r.gs_tol_current << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\n  -> BENCH_nodal_solver.json\n";
}

/// CI gate: the factorized repeated-query path must beat cold-start
/// Gauss-Seidel and agree with it within the iterative solver's accuracy.
int run_nodal_smoke() {
  std::cout << "nodal solver smoke (" << parallel_thread_count() << " thread(s)):\n";
  const SizeResult r = run_size(64, /*queries=*/8, /*seed=*/2000);
  std::cout << "  64x64, 8 queries: GS cold " << r.gs_cold_s * 1e3 << " ms, factorized "
            << r.direct_query_s * 1e3 << " ms (+ " << r.direct_build_s * 1e3
            << " ms one-time factorize), speedup " << r.speedup_repeated()
            << "x, max deviation " << r.max_dev << " A (tolerance " << r.gs_tol_current
            << " A)\n";
  bool ok = true;
  if (r.speedup_repeated() < 2.0) {
    std::cout << "FAIL: factorized repeated-query path is not clearly faster than "
                 "cold-start Gauss-Seidel\n";
    ok = false;
  }
  if (r.max_dev > r.gs_tol_current) {
    std::cout << "FAIL: factorized currents deviate from Gauss-Seidel beyond the "
                 "solver tolerance\n";
    ok = false;
  }
  std::cout << (ok ? "nodal smoke OK\n" : "nodal smoke FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--nodal-smoke") == 0) return run_nodal_smoke();

  util::ArgParse args("micro_nodal_solver",
                      "repeated-query nodal readout: Gauss-Seidel vs cached factorization");
  util::add_bench_options(args, /*default_seed=*/2000);
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  util::apply_bench_options(args);
  const std::uint64_t seed = args.uinteger("seed");

  print_banner(std::cout, "Micro-benchmark — factorization-cached nodal solver",
               "GS cold vs warm vs factorized (single and batched multi-RHS)");
  std::cout << "Threads: " << parallel_thread_count() << " (XLDS_THREADS).\n\n";

  std::vector<SizeResult> results;
  for (std::size_t n : {16u, 32u, 64u, 128u})
    results.push_back(run_size(n, /*queries=*/16, seed));

  print_results(results);
  emit_json(results);

  std::cout << "\nExpected shape: cold-start Gauss-Seidel cost per query grows steeply\n"
               "with array size; the cached factorization pays a one-time build and\n"
               "then answers each query with a forward/back substitution — 10x+ faster\n"
               "on repeated 64x64 queries — and the batched path adds parallel\n"
               "substitutions on top.  Warm-started Gauss-Seidel shifts the stored\n"
               "iterate by each row's driver-voltage change before reusing it, so on\n"
               "the decorrelated random queries measured here it starts at least as\n"
               "close as the cold flat guess (it used to start from the raw previous\n"
               "solution, which was strictly worse and made \"warm\" slower than\n"
               "cold); it still trails the direct path by an order of magnitude,\n"
               "which is why factorization — not warm starting — is the default\n"
               "answer to repeated-query workloads.\n";
  return 0;
}
