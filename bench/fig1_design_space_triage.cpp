// Fig. 1 / Sec. VII — the triage flow over the full design space.
//
// The framework's own story: enumerate device x architecture x algorithm for
// an application, cull the structurally broken combinations (with reasons),
// score the survivors analytically, extract the Pareto front and print the
// ranked shortlist a deep-dive would start from.
#include <fstream>
#include <iostream>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"
#include "core/pareto.hpp"
#include "core/profiler.hpp"
#include "core/report.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace xlds;

int main(int argc, char** argv) {
  util::ArgParse args("fig1_design_space_triage",
                      "enumerate -> cull -> evaluate -> Pareto -> ranked shortlist");
  args.add_option("app", "application preset to triage", "isolet-like");
  util::add_bench_options(args, /*default_seed=*/7);
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  util::apply_bench_options(args);

  print_banner(std::cout, "Fig. 1 — design-space triage",
               "enumerate -> cull -> evaluate -> Pareto -> ranked shortlist");

  const std::string app = args.str("app");
  // Step 0 (the Fig. 6 inset): profile the actual software implementation.
  const core::MeasuredProfile measured =
      core::profile_hdc_application(app, 2048, args.uinteger("seed"));
  const core::AppProfile profile = core::to_app_profile(measured);
  std::cout << "Measured profile: encode " << measured.encode_macs << " MACs/query, search "
            << measured.search_macs << " MACs/query over " << measured.am_entries
            << " AM entries; measured search share "
            << Table::num(100.0 * measured.measured_search_fraction, 1)
            << " %; software accuracy " << Table::num(measured.software_accuracy, 3) << ".\n\n";
  const auto all = core::enumerate_design_space(app, /*include_culled=*/true);

  std::size_t culled = 0;
  for (const auto& ep : all)
    if (ep.culled_because) ++culled;
  std::cout << "Application: " << app << " — " << all.size() << " raw combinations, " << culled
            << " culled structurally, " << (all.size() - culled) << " evaluated.\n\n";

  // A sample of the cull reasons (the paper's "some design points may
  // inherently be eliminated" examples).
  Table culls({"design point", "cull reason"});
  std::size_t shown = 0;
  for (const auto& ep : all) {
    if (!ep.culled_because || shown >= 6) continue;
    if (ep.culled_because->find("SRAM baseline") != std::string::npos) continue;  // dedup noise
    culls.add_row({ep.point.to_string(), *ep.culled_because});
    ++shown;
  }
  std::cout << culls << '\n';

  core::Evaluator ev;
  const auto foms = ev.evaluate_all(all, profile);  // parallel sweep, memoised
  std::vector<core::ScoredPoint> scored;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].culled_because) continue;
    scored.push_back(core::ScoredPoint{all[i].point, foms[i]});
  }

  const auto front = core::pareto_front(scored);
  const auto ranking = core::triage_ranking(scored);

  std::cout << core::format_shortlist(scored, ranking, front);
  std::cout << "\nPareto front size: " << front.size() << " of " << scored.size()
            << " evaluated points.\n\n";
  if (!args.str("out").empty()) {
    std::ofstream(args.str("out")) << core::format_shortlist(scored, ranking, front);
    std::cout << "Shortlist written to " << args.str("out") << ".\n\n";
  }

  // The same triage across every application preset: the per-app winner.
  Table winners({"application", "top-ranked design", "latency/query", "est. accuracy"});
  for (const char* name : {"isolet-like", "ucihar-like", "mnist-like", "face-like",
                           "language-like", "omniglot-like"}) {
    std::vector<core::ScoredPoint> app_scored;
    (void)core::triage_report(name, ev, {}, &app_scored);
    const auto app_rank = core::triage_ranking(app_scored);
    const core::ScoredPoint& best = app_scored[app_rank.front()];
    winners.add_row({name, best.point.to_string(), si_format(best.fom.latency, "s", 2),
                     Table::num(best.fom.accuracy, 3)});
  }
  std::cout << "Per-application winners (same framework, six workloads):\n" << winners;
  std::cout << "\nExpected shape: technology-enabled in-memory designs (FeFET/RRAM hybrids)\n"
               "top the latency/energy ranking; digital platforms survive as the\n"
               "iso-accuracy-at-zero-silicon baselines — the Fig. 1 triage the paper\n"
               "argues analytical tools must provide.\n";
  return 0;
}
