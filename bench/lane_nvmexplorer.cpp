// NVMExplorer lane (Sec. VI) — cross-stack comparison of embedded NVMs:
// memory FOM, lifetime under write traffic, and application-level DNN
// accuracy with the model's weights stored in the (faulty) memory.
#include <iostream>

#include "nvsim/explorer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/dataset.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "NVMExplorer lane — embedded-NVM cross-stack comparison",
               "memory FOM + lifetime + DNN accuracy vs storage age");

  // The application: an int8 MLP classifier whose weights live in the NVM.
  const workload::Dataset ds =
      workload::standardised(workload::make_named_dataset("ucihar-like", 1300));
  Rng train_rng(1301);
  nn::Network mlp = nn::make_mlp(ds.dim, {64}, ds.n_classes, train_rng);
  for (int e = 0; e < 40; ++e)
    mlp.train_epoch(ds.train_x, ds.train_y, 0.002, train_rng, 0.9, 0.003);
  const double clean_acc = mlp.accuracy(ds.test_x, ds.test_y);
  std::cout << "workload: " << ds.name << " MLP, fault-free accuracy "
            << Table::num(clean_acc, 3) << "\n\n";

  nvsim::TrafficProfile traffic;
  traffic.write_bytes_per_s = 50e3;  // occasional model updates
  traffic.read_bytes_per_s = 200e6;  // inference streaming

  constexpr double kYear = 365.0 * 24 * 3600;
  Table table({"device", "read lat", "lifetime @50KB/s", "read power", "acc @0",
               "acc @5y", "acc @12y", "acc @20y"});
  for (device::DeviceKind dev : {device::DeviceKind::kRram, device::DeviceKind::kPcm,
                                 device::DeviceKind::kFeFet, device::DeviceKind::kMram,
                                 device::DeviceKind::kFlash}) {
    nvsim::NvRamConfig mem;
    mem.device = dev;
    mem.tech = "40nm";
    mem.capacity_bits = 2ull * 1024 * 1024;
    nvsim::NvmExplorer explorer(mem, nvsim::FaultModel{}, traffic);
    const nvsim::ExplorerReport rep = explorer.report();

    std::vector<std::string> row = {device::to_string(dev),
                                    si_format(rep.memory.read_latency, "s", 2),
                                    rep.lifetime_s > 300.0 * kYear
                                        ? ">300 y"
                                        : Table::num(rep.lifetime_s / kYear, 1) + " y",
                                    si_format(rep.read_power_w, "W", 2)};
    Rng rng(1302);
    for (double age : {0.0, 5.0 * kYear, 12.0 * kYear, 20.0 * kYear}) {
      row.push_back(Table::num(explorer.dnn_accuracy_at(mlp, ds.test_x, ds.test_y, age, rng), 3));
    }
    table.add_row(row);
  }
  std::cout << table;
  std::cout << "\nExpected shape: all NVMs hold application accuracy well inside their\n"
               "10-year retention spec; past it the retention BER explodes and accuracy\n"
               "collapses toward chance.  Lifetime under write traffic separates the\n"
               "endurance classes (flash wears out in months at this traffic; MRAM is\n"
               "effectively immortal) — the NVMExplorer-style cross-stack triage.\n";
  return 0;
}
