// Sec. II-B1's ACAM claim, quantified: "ACAMs can encode more information
// per cell than MCAMs but may suffer more from noise and variation effects."
//
// An analog CAM cell stores an *interval* (two V_th bounds), so its
// information content is set by how finely intervals can be packed — which
// programming variation directly erodes.  This bench packs N disjoint
// intervals per cell and measures the classification error of interval
// membership vs the FeFET MCAM storing the same number of discrete levels.
#include <iostream>

#include "cam/acam.hpp"
#include "device/fefet.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace xlds;

namespace {

/// Error rate of interval membership: cells store the i-th of `n_intervals`
/// equal slices of [0, 1]; queries at slice centres must match exactly their
/// own row.  Trials run in parallel chunks, each on its own forked RNG
/// stream — the result is identical at any XLDS_THREADS.
double acam_error(std::size_t n_intervals, double sigma, Rng& rng) {
  cam::AcamConfig cfg;
  cfg.rows = n_intervals;
  cfg.cols = 1;
  cfg.apply_variation = sigma > 0.0;
  cfg.fefet.sigma_program = sigma;
  constexpr std::size_t kTrials = 400;
  constexpr std::size_t kChunk = 25;
  std::vector<std::size_t> chunk_errors((kTrials + kChunk - 1) / kChunk, 0);
  parallel_for_rng(rng, kTrials, kChunk,
                   [&](Rng& trial_rng, std::size_t begin, std::size_t end, std::size_t ci) {
    std::size_t errors = 0;
    for (std::size_t t = begin; t < end; ++t) {
      cam::FeFetAcamArray acam(cfg, trial_rng);
      const double width = 1.0 / static_cast<double>(n_intervals);
      for (std::size_t i = 0; i < n_intervals; ++i)
        acam.write_word(i, {{i * width, (i + 1) * width}});
      // Query the centre of a random slice: a correct ACAM returns exactly
      // that row.
      const std::size_t target = trial_rng.uniform_u32(static_cast<std::uint32_t>(n_intervals));
      const double q = (static_cast<double>(target) + 0.5) * width;
      const auto hits = acam.exact_match({q});
      const bool ok = hits.size() == 1 && hits[0] == target;
      if (!ok) ++errors;
    }
    chunk_errors[ci] = errors;
  });
  std::size_t errors = 0;
  for (std::size_t e : chunk_errors) errors += e;
  return static_cast<double>(errors) / static_cast<double>(kTrials);
}

/// MCAM reference: probability a discrete level is programmed/read wrongly.
double mcam_error(int bits, double sigma) {
  device::FeFetParams p;
  p.bits = bits;
  p.sigma_program = sigma;
  const device::FeFetModel m(p);
  // Average over levels.
  double sum = 0.0;
  for (int l = 0; l < p.levels(); ++l) sum += m.level_error_probability(l);
  return sum / p.levels();
}

}  // namespace

int main() {
  print_banner(std::cout, "Sec. II-B1 — ACAM information density vs variation sensitivity",
               "interval membership error vs discrete-level error at matched states/cell");

  Table table({"states per cell", "sigma (mV)", "MCAM level error", "ACAM interval error"});
  Rng rng(1600);
  for (int bits : {2, 3}) {
    const auto states = static_cast<std::size_t>(1 << bits);
    for (double sigma : {0.0, 0.047, 0.094, 0.15}) {
      table.add_row({std::to_string(states), Table::num(sigma * 1e3, 0),
                     Table::num(mcam_error(bits, sigma), 3),
                     Table::num(acam_error(states, sigma, rng), 3)});
    }
  }
  std::cout << table;
  std::cout << "\nExpected shape: at matched state counts the ACAM errs more at every\n"
               "sigma — each interval needs TWO programmed bounds, and a shifted bound\n"
               "both misses its own queries and swallows a neighbour's.  The extra\n"
               "information per cell is real, but it is bought with variation\n"
               "sensitivity — exactly the paper's caveat.\n";
  return 0;
}
