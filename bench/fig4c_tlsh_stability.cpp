// Fig. 4C — ternary LSH masks the unstable near-plane hash bits.
//
// Paper claim: conductance relaxation randomly flips hash bits whose
// projection lands close to the hashing plane; marking those bits as
// don't-care (TLSH) removes their Hamming-distance contribution and
// stabilises the signature.
#include <iostream>

#include "mann/lsh.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Fig. 4C — hash-bit stability: LSH vs ternary LSH",
               "paper: TLSH's don't-care bits absorb the relaxation-induced "
               "flips");

  constexpr std::size_t kInputDim = 64;
  constexpr std::size_t kBits = 256;
  constexpr int kVectors = 24;
  constexpr double kRelaxSeconds = 1.0e4;

  Table table({"TLSH threshold", "X-bit fraction", "flipped bits (binary read)",
               "effective signature instability"});

  for (double threshold : {0.0, 0.2, 0.35, 0.5, 0.7}) {
    RunningStats dc_frac, flips, instability;
    for (int v = 0; v < kVectors; ++v) {
      Rng rng(200 + v);
      xbar::CrossbarConfig cfg;
      cfg.rows = kInputDim;
      cfg.cols = 2 * kBits;
      cfg.read_noise_rel = 0.0;
      mann::CrossbarLsh lsh(cfg, kBits, rng);

      Rng data(300 + v);
      std::vector<double> x(kInputDim);
      for (double& e : x) e = data.uniform();

      const mann::Signature stored = lsh.hash_ternary(x, threshold);
      const mann::Signature before = lsh.hash(x);
      lsh.age(kRelaxSeconds);
      const mann::Signature after = lsh.hash(x);

      std::size_t raw_flips = 0;
      std::size_t effective_flips = 0;
      for (std::size_t i = 0; i < kBits; ++i) {
        if (before[i] != after[i]) {
          ++raw_flips;
          // A flip only perturbs the stored signature's distance if the
          // stored bit was NOT a don't-care.
          if (stored[i] != cam::kDontCare) ++effective_flips;
        }
      }
      dc_frac.add(mann::dont_care_fraction(stored));
      flips.add(static_cast<double>(raw_flips));
      instability.add(static_cast<double>(effective_flips) / static_cast<double>(kBits));
    }
    table.add_row({Table::num(threshold, 2), Table::num(dc_frac.mean(), 3),
                   Table::num(flips.mean(), 1),
                   Table::num(100.0 * instability.mean(), 2) + " %"});
  }

  std::cout << table;
  std::cout << "\nExpected shape: raw flip count is threshold-independent (same devices\n"
               "relax), but the *effective* instability of the stored signature falls\n"
               "steeply as the TLSH threshold masks the near-plane bits.\n";
  return 0;
}
