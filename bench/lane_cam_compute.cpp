// AMs as general-purpose compute (the CAPE capability cited in Sec. VI).
//
// Row-parallel boolean/arithmetic kernels on the ternary CAM: the cost of a
// kernel is a fixed number of search/write passes *independent of the row
// count*, so throughput scales linearly with array height while a CPU's
// scales not at all — the crossover is where CAM-compute starts paying.
#include <iostream>

#include "cam/processor.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace xlds;

namespace {

cam::CamOpCost measure_adder(std::size_t rows) {
  cam::RramTcamConfig cfg;
  cfg.rows = rows;
  cfg.cols = 14;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  cfg.sense_levels = 256;
  Rng rng(1500);
  cam::CamProcessor proc(cfg, rng);
  Rng data(1501);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<int> row(14, 0);
    for (std::size_t i = 0; i < 8; ++i) row[i] = data.bernoulli(0.5) ? 1 : 0;
    proc.load_row(r, row);
  }
  proc.reset_cost();
  proc.add_words({0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, 12, 13);
  return proc.cost();
}

}  // namespace

int main() {
  print_banner(std::cout, "AM general-purpose compute — row-parallel 4-bit adds",
               "kernel cost is rows-independent; throughput scales with array height");

  // A scalar core for comparison: ~2 GHz, 2 IPC, an add is ~1 op.
  constexpr double kCpuAddsPerSecond = 4.0e9;
  constexpr double kCpuEnergyPerAdd = 5.0e-12;

  Table table({"rows", "search passes", "write passes", "kernel latency", "adds/s (CAM)",
               "adds/s (CPU)", "energy/add (CAM)", "energy/add (CPU)"});
  for (std::size_t rows : {std::size_t{64}, std::size_t{256}, std::size_t{1024},
                           std::size_t{4096}}) {
    const cam::CamOpCost cost = measure_adder(rows);
    const double adds_per_s = static_cast<double>(rows) / cost.total.latency;
    table.add_row({std::to_string(rows), std::to_string(cost.searches),
                   std::to_string(cost.writes), si_format(cost.total.latency, "s", 2),
                   si_format(adds_per_s, "add/s", 2), si_format(kCpuAddsPerSecond, "add/s", 2),
                   si_format(cost.total.energy / static_cast<double>(rows), "J", 2),
                   si_format(kCpuEnergyPerAdd, "J", 2)});
  }
  std::cout << table;
  std::cout << "\nExpected shape: pass counts are constant (the truth-table structure),\n"
               "so the CAM's add throughput grows linearly with rows and crosses the\n"
               "scalar core somewhere in the thousands-of-rows regime — bulk, not\n"
               "latency, is where in-memory general-purpose compute pays, and writes\n"
               "(RRAM programming) dominate its energy.\n";
  return 0;
}
