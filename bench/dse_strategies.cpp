// DSE — budgeted search strategies vs brute-force enumeration.
//
// The exploration engine's headline claim (and the acceptance bar in
// tests/test_dse.cpp): a guided search that pays for a fraction of the
// design space recovers nearly all of the brute-force Pareto front.  This
// bench sweeps every registered driver across a ladder of budgets on the
// fig1 triage space and reports front recovery, charges spent, and how the
// successive-halving driver distributes a multi-fidelity budget.
#include <iostream>
#include <set>
#include <string>

#include "dse/engine.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace xlds;

namespace {

std::set<std::string> front_designs(const dse::ExplorationResult& r) {
  std::set<std::string> keys;
  for (const std::size_t f : r.front) keys.insert(r.evaluated[f].point.to_string());
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParse args("dse_strategies",
                      "front recovery of budgeted search drivers vs brute force");
  util::add_bench_options(args, /*default_seed=*/1);
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  util::apply_bench_options(args);

  print_banner(std::cout, "DSE — search strategies vs brute force",
               "front recovery per driver at 10/15/20 % of the full-grid budget");

  // Reference: exhaustive single-tier enumeration of the fig1 space.
  dse::EngineConfig brute;
  brute.strategy = "lhs";
  brute.budget = 0;  // one charge per viable point
  brute.seed = args.uinteger("seed");
  const dse::ExplorationResult full = dse::explore(brute);
  const std::set<std::string> want = front_designs(full);
  std::cout << "Brute force: " << full.stats.charges << " evaluations, front size "
            << want.size() << ".\n\n";

  Table table({"strategy", "budget", "charges", "front recovered", "distinct designs"});
  // Budget fractions are of the *raw grid* (the acceptance bar's basis):
  // 20 % of the 168-point fig1 grid is 33 charges against 42 viable points.
  const std::size_t grid = dse::SearchSpace().size();
  const std::size_t viable = full.stats.charges;
  for (const std::string& strategy : dse::driver_names()) {
    for (const double fraction : {0.10, 0.15, 0.20}) {
      dse::EngineConfig config;
      config.strategy = strategy;
      config.budget = static_cast<std::size_t>(fraction * static_cast<double>(grid));
      config.seed = args.uinteger("seed");
      const dse::ExplorationResult got = dse::explore(config);

      std::size_t recovered = 0;
      for (const std::string& k : front_designs(got)) recovered += want.count(k);
      table.add_row({strategy, Table::num(100.0 * fraction, 0) + " %",
                     std::to_string(got.stats.charges),
                     std::to_string(recovered) + "/" + std::to_string(want.size()),
                     std::to_string(got.evaluated.size())});
    }
  }
  std::cout << table;

  // Successive halving is the multi-fidelity specialist: same budget, but
  // spread across the analytic -> nodal -> Monte-Carlo ladder.
  dse::EngineConfig ladder;
  ladder.strategy = "halving";
  ladder.budget = viable;
  ladder.seed = args.uinteger("seed");
  ladder.fidelity.max_fidelity = dse::Fidelity::kMonteCarlo;
  const dse::ExplorationResult hv = dse::explore(ladder);
  std::cout << "\nHalving across the full fidelity ladder (budget " << hv.stats.charges
            << "): analytic " << hv.stats.charges_by_tier[1] << ", nodal "
            << hv.stats.charges_by_tier[2] << ", MC " << hv.stats.charges_by_tier[3]
            << " charges.\n";

  std::cout << "\nExpected shape: nsga2 recovers (nearly) the whole front by 20 %\n"
               "budget — the tests pin >= 90 % — while random/lhs climb roughly\n"
               "linearly with budget; halving pushes most charges to the cheap\n"
               "analytic rung and promotes a shrinking cohort up the ladder.\n";
  return 0;
}
