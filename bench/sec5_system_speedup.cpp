// Sec. V — system-level speedup from integrating an analog crossbar
// accelerator (the gem5-X-class experiment).
//
// Paper claim: system simulation of tightly-integrated analog crossbars
// shows benchmark CNNs accelerating by up to ~20x, with LSTMs and
// transformers benefiting less (their non-MVM work — gate math, attention —
// stays on the core: Amdahl's law).
#include <cmath>
#include <iostream>

#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/layer_map.hpp"

using namespace xlds;

namespace {

sim::CoreConfig edge_core() {
  sim::CoreConfig core;
  core.freq_hz = 2.0e9;
  core.ipc = 2.0;
  core.macs_per_cycle = 4.0;  // NEON-class SIMD
  return core;
}

sim::CacheConfig l1() {
  return sim::CacheConfig{.name = "L1", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 4,
                          .hit_latency_s = 0.5e-9};
}
sim::CacheConfig l2() {
  return sim::CacheConfig{.name = "L2", .size_bytes = 1024 * 1024, .line_bytes = 64, .ways = 8,
                          .hit_latency_s = 5e-9};
}

}  // namespace

int main() {
  print_banner(std::cout, "Sec. V — crossbar-accelerator speedup from system simulation",
               "paper: up to ~20x on benchmark CNNs; less for attention/"
               "recurrence-heavy models");

  // Accelerator tile cost taken from the analog crossbar model itself.
  Rng rng(1);
  xbar::CrossbarConfig tile;
  tile.rows = 64;
  tile.cols = 64;
  tile.apply_variation = false;
  tile.read_noise_rel = 0.0;
  sim::AcceleratorConfig accel;
  accel.present = true;
  accel.tile_cost = xbar::Crossbar(tile, rng).mvm_cost();
  accel.parallel_tiles = 16;

  struct Workload {
    std::string name;
    sim::Program program;
    sim::AcceleratorConfig accel;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"CNN (4 conv layers)", sim::make_cnn_program(sim::cifar_cnn(4)), accel});
  workloads.push_back({"CNN (6 conv layers)", sim::make_cnn_program(sim::cifar_cnn(6)), accel});
  workloads.push_back({"CNN (8 conv layers)", sim::make_cnn_program(sim::cifar_cnn(8)), accel});
  workloads.push_back({"LSTM (512h x 32t)", sim::make_lstm_program(sim::LstmSpec{}), accel});
  workloads.push_back({"Transformer (2 layers)",
                       sim::make_transformer_program(sim::TransformerSpec{}), accel});

  // Realistic-layer-size row: a DNN MLP whose 256x512 hidden layer is the
  // size the bit-sliced layer mapper (src/xbar/layer_map.hpp) shards onto a
  // 64x64 tile fleet.  Its per-tile cost is the mapped fleet's cost divided
  // by the tiles one logical MVM touches, so the row charges what the
  // bit-sliced analog fleet — not an idealised single-array tile — costs.
  const sim::MlpSpec mlp_spec;
  xbar::LayerMapConfig map_cfg;
  map_cfg.tiled.tile = tile;
  Rng map_rng(2);
  MatrixD hidden(mlp_spec.dims[1], mlp_spec.dims[2]);
  for (std::size_t r = 0; r < hidden.rows(); ++r)
    for (std::size_t c = 0; c < hidden.cols(); ++c)
      hidden(r, c) = map_rng.uniform(-1.0, 1.0);
  const xbar::MappedLayer mapped(map_cfg, hidden, map_rng);
  const std::size_t tiles_per_mvm =
      ((mapped.in_dim() + 63) / 64) * ((mapped.out_dim() + 63) / 64);
  sim::AcceleratorConfig mlp_accel = accel;
  const xbar::MvmCost fleet = mapped.mvm_cost();
  const double rounds = std::ceil(static_cast<double>(tiles_per_mvm) /
                                  static_cast<double>(mlp_accel.parallel_tiles));
  mlp_accel.tile_cost = {fleet.latency / rounds,
                         fleet.energy / static_cast<double>(tiles_per_mvm)};
  workloads.push_back(
      {"MLP (256-512-512-10, b8)", sim::make_mlp_program(mlp_spec), mlp_accel});

  Table table({"workload", "MVM MACs", "baseline time", "accelerated time", "speedup",
               "accel busy", "offload overhead"});
  double best_speedup = 0.0;
  for (const Workload& w : workloads) {
    sim::Machine baseline(edge_core(), l1(), l2(), sim::DramConfig{}, sim::AcceleratorConfig{});
    sim::Machine accelerated(edge_core(), l1(), l2(), sim::DramConfig{}, w.accel);
    const sim::RunStats s0 = baseline.run(w.program);
    const sim::RunStats s1 = accelerated.run(w.program);
    const double speedup = s0.total_time / s1.total_time;
    best_speedup = std::max(best_speedup, speedup);
    table.add_row({w.name, si_format(static_cast<double>(sim::program_macs(w.program)), "MAC", 2),
                   si_format(s0.total_time, "s", 2), si_format(s1.total_time, "s", 2),
                   Table::num(speedup, 1) + "x", si_format(s1.accel_time, "s", 2),
                   si_format(s1.transfer_time, "s", 2)});
  }
  std::cout << table;
  std::cout << "\nMLP hidden layer mapped by the bit-sliced layer mapper: "
            << mapped.in_dim() << "x" << mapped.out_dim() << " weights -> "
            << mapped.slice_count() << " bit slices x " << mapped.tile_count() / mapped.slice_count()
            << " tiles (" << si_format(static_cast<double>(mapped.device_count()), "devices", 2)
            << "); per-MVM fleet cost " << si_format(fleet.latency, "s", 2) << " / "
            << si_format(fleet.energy, "J", 2) << " charged to the row above.\n";
  std::cout << "\nBest observed speedup: " << Table::num(best_speedup, 1)
            << "x (paper: 'up to 20X' for benchmark CNNs).\n"
               "Expected shape: CNN speedups grow with depth into the 10-20x decade the\n"
               "paper reports, bounded by offload transfers (Amdahl); the transformer's\n"
               "core-resident attention math caps its gain; the LSTM — whose runtime is\n"
               "almost purely the gate MVM on this class of core — gains the most.  This\n"
               "is precisely the early insight the paper argues system simulation gives\n"
               "ahead of detailed hardware design.\n";
  return 0;
}
