// Ablation — the multi-bit CAM density/sensing trade (Fig. 3B's shrinking
// window, quantified through the Eva-CAM extension).
//
// Storing more bits per FeFET cell shrinks the array (and the HDC case study
// showed 3-bit cells reduce the hypervector memory by 3x at iso-accuracy);
// the price is a smaller one-step mismatch conductance and tighter sensing
// limits.  This table makes the trade explicit, with and without device
// variation folded in, plus the fault-injection view from the functional
// crossbar (stuck-cell fraction vs MVM error).
#include <iostream>

#include "evacam/evacam.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "xbar/crossbar.hpp"

using namespace xlds;

int main() {
  print_banner(std::cout, "Ablation — MCAM bits/cell vs density and sensing",
               "Eva-CAM with the multi-bit extension; 512 x 128-bit words at 28 nm");

  Table table({"bits/cell", "cells/word", "area (um^2)", "write E/word", "1-step g (uS)",
               "mismatch limit", "limit @ 8% sigma", "max columns", "max cols @ 8% sigma"});
  for (int bits = 1; bits <= 3; ++bits) {
    evacam::CamDesignSpec spec;
    spec.device = device::DeviceKind::kFeFet;
    spec.cell = evacam::CellType::k2FeFET;
    spec.match = cam::MatchType::kBest;
    spec.tech = "28nm";
    spec.words = 512;
    spec.bits = 128;
    spec.bits_per_cell = bits;
    spec.subarray_rows = 128;
    spec.subarray_cols = 64;
    spec.min_distinguishable_steps = 2;
    spec.device_sigma_rel = 0.08;
    const evacam::EvaCam tool(spec);
    const evacam::CamFom fom = tool.evaluate();
    table.add_row({std::to_string(bits), std::to_string(tool.cells_per_word()),
                   Table::num(to_um2(fom.area_m2), 0), si_format(fom.write_energy, "J", 2),
                   Table::num(tool.mismatch_conductance() * 1e6, 2),
                   std::to_string(fom.mismatch_limit),
                   std::to_string(fom.mismatch_limit_with_variation),
                   std::to_string(fom.max_ml_columns),
                   std::to_string(fom.max_ml_columns_with_variation)});
  }
  std::cout << table;

  print_banner(std::cout, "Fault-injection view — stuck cells vs crossbar MVM error",
               "the defect axis the statistical array model (Sec. IV) covers");
  Table faults({"stuck fraction", "stuck-at", "mean |MVM error| (weight units)"});
  for (double fraction : {0.0, 0.01, 0.05, 0.10}) {
    for (bool at_lrs : {false, true}) {
      Rng rng(1400);
      xbar::CrossbarConfig cfg;
      cfg.rows = 64;
      cfg.cols = 64;
      cfg.apply_variation = false;
      cfg.read_noise_rel = 0.0;
      cfg.ir_drop = xbar::IrDropMode::kNone;
      xbar::Crossbar xb(cfg, rng);
      xb.inject_random_stuck_faults(fraction, at_lrs ? cfg.rram.g_max : cfg.rram.g_min);
      Rng data(1401);
      MatrixD w(64, 32);
      for (double& v : w.data()) v = data.uniform(-1.0, 1.0);
      xb.program_weights(w);
      std::vector<double> x(64);
      for (double& v : x) v = data.uniform();
      const auto ideal = xb.ideal_mvm(x);
      const auto got = xb.mvm(x);
      RunningStats err;
      for (std::size_t j = 0; j < got.size(); ++j) err.add(std::abs(got[j] - ideal[j]));
      faults.add_row({Table::num(fraction, 2), at_lrs ? "LRS" : "HRS", Table::num(err.mean(), 3)});
      if (fraction == 0.0) break;  // stuck-at is irrelevant at zero faults
    }
  }
  std::cout << faults;
  std::cout << "\nExpected shape: density and write energy improve ~linearly with bits/cell\n"
               "while the one-step conductance collapses quadratically and the (variation-\n"
               "aware) matchline width tightens; stuck-at-LRS defects hurt the crossbar\n"
               "far more than stuck-at-HRS — why defect-aware mapping prefers HRS-biased\n"
               "codes (Sec. IV).\n";
  return 0;
}
