// Fig. 6 / Sec. VI flow in one sitting: take a device, apply a materials
// lever, and watch the change propagate through three lanes — the
// conventional memory array (NVSim lane), lifetime/fault behaviour
// (NVMExplorer lane) and the CAM accelerator (Eva-CAM lane).
//
//   ./technology_what_if [device=mram|fefet] [lever_index=0]
#include <cstdlib>
#include <iostream>
#include <string>

#include "device/materials.hpp"
#include "evacam/evacam.hpp"
#include "nvsim/explorer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace xlds;
  const std::string which = argc > 1 ? argv[1] : "mram";
  const std::size_t lever_index = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;

  const bool is_mram = which == "mram";
  const device::DeviceKind kind =
      is_mram ? device::DeviceKind::kMram : device::DeviceKind::kFeFet;
  const auto& levers = is_mram ? device::spin_device_levers() : device::ferroelectric_levers();
  if (lever_index >= levers.size()) {
    std::cerr << "lever_index out of range; " << which << " has " << levers.size()
              << " levers\n";
    return 1;
  }
  const device::MaterialsLever& lever = levers[lever_index];
  const device::DeviceTraits base = device::traits(kind);
  const device::DeviceTraits improved = device::apply_lever(base, lever);

  std::cout << "== Technology what-if: " << device::to_string(kind) << " + '" << lever.name
            << "' ==\n"
            << "mechanism: " << lever.mechanism << "\n\n";

  Table table({"lane / figure of merit", "baseline", "with lever"});
  auto row = [&](const std::string& name, const std::string& a, const std::string& b) {
    table.add_row({name, a, b});
  };

  // Device level.
  row("device: write energy", si_format(base.write_energy, "J", 2),
      si_format(improved.write_energy, "J", 2));
  row("device: on/off ratio", Table::num(base.on_off_ratio(), 1),
      Table::num(improved.on_off_ratio(), 1));
  row("device: endurance", si_format(base.endurance_cycles, "cycles", 1),
      si_format(improved.endurance_cycles, "cycles", 1));

  // NVSim + NVMExplorer lanes.
  for (const bool with_lever : {false, true}) {
    nvsim::NvRamConfig mem;
    mem.device = kind;
    mem.tech = "40nm";
    mem.capacity_bits = 2ull * 1024 * 1024;
    if (with_lever) mem.device_override = improved;
    nvsim::TrafficProfile traffic;
    traffic.write_bytes_per_s = 2e6;
    const nvsim::ExplorerReport rep = nvsim::NvmExplorer(mem, {}, traffic).report();
    const std::string life = rep.lifetime_s > 9.5e9 ? ">300 y"
                                                    : Table::num(rep.lifetime_s / 3.15e7, 1) + " y";
    if (!with_lever) {
      table.add_row({"memory lane: write E/word, lifetime @2MB/s",
                     si_format(rep.memory.write_energy, "J", 2) + ", " + life, ""});
    } else {
      table.add_row({"  (with lever)", "",
                     si_format(rep.memory.write_energy, "J", 2) + ", " + life});
    }
  }

  // Eva-CAM lane.
  for (const bool with_lever : {false, true}) {
    evacam::CamDesignSpec cam;
    cam.device = kind;
    cam.cell = is_mram ? evacam::CellType::k4T2R : evacam::CellType::k2FeFET;
    cam.tech = "40nm";
    cam.words = 1024;
    cam.bits = 64;
    cam.subarray_rows = 128;
    cam.subarray_cols = 64;
    if (with_lever) cam.device_override = improved;
    const evacam::CamFom fom = evacam::EvaCam(cam).evaluate();
    const std::string cells = std::to_string(fom.max_ml_columns) + " cols, " +
                              si_format(fom.search_energy, "J", 2);
    if (!with_lever)
      table.add_row({"CAM lane: max matchline, search energy", cells, ""});
    else
      table.add_row({"  (with lever)", "", cells});
  }

  std::cout << table;
  std::cout << "\nTry './technology_what_if mram 1' (high-TMR: the search lane moves) vs\n"
               "'./technology_what_if mram 0' (SOT: the write lane moves) — the paper's\n"
               "point that materials priorities depend on the application profile.\n";
  return 0;
}
