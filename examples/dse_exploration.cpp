// Budgeted design-space exploration with crash-safe resume.
//
// Runs an NSGA-II search over the full device x architecture x algorithm
// grid at 20 % of the brute-force budget, journalling every result; then
// re-runs against the same journal to show that a restart pays zero model
// time and reproduces the identical front.  Kill the first run at any point
// and the second still completes it — that is the journal's contract.
//
//   ./dse_exploration [journal=/tmp/xlds-dse.journal]
#include <cstdio>
#include <iostream>

#include "dse/engine.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace xlds;
  const std::string journal = argc > 1 ? argv[1] : "/tmp/xlds-dse.journal";
  std::remove(journal.c_str());  // fresh demo: drop any previous journal

  std::cout << "== Budgeted DSE with a crash-safe journal ==\n\n";

  dse::EngineConfig config;
  config.application = "isolet-like";
  config.strategy = "nsga2";
  config.budget = 33;  // ~20 % of the 168-point grid
  config.seed = 1;
  config.journal_path = journal;

  const dse::ExplorationResult first = dse::explore(config);
  std::cout << "First run:  " << first.stats.computed << " points computed, "
            << first.stats.journal_hits << " served from the journal; front size "
            << first.front.size() << ".\n";

  // Same config, same journal: every charge is a replay, nothing recomputes.
  const dse::ExplorationResult again = dse::explore(config);
  std::cout << "Second run: " << again.stats.computed << " points computed, "
            << again.stats.journal_hits << " served from the journal (resumed="
            << (again.stats.resumed ? "yes" : "no") << ").\n\n";

  std::cout << "Pareto front (" << first.front.size() << " designs):\n";
  for (const std::size_t f : first.front) {
    const core::ScoredPoint& sp = first.evaluated[f];
    std::cout << "  " << sp.point.to_string() << " — " << si_format(sp.fom.latency, "s", 2)
              << "/query, " << si_format(sp.fom.energy, "J", 2) << ", accuracy "
              << sp.fom.accuracy << "\n";
  }

  std::cout << "\nTriage winner: "
            << first.evaluated[first.ranking.front()].point.to_string() << "\n"
            << "Journal kept at " << journal << " — delete it to start clean, or\n"
               "re-run with a bigger budget to extend the same exploration.\n";
  return 0;
}
