// Sec.-VII top-down flow: profile an application, enumerate the technology
// design space, cull, evaluate, and triage — with user-steerable weights.
//
//   ./design_space_triage [application=isolet-like] [accuracy_weight=30]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"
#include "core/pareto.hpp"
#include "core/report.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace xlds;
  const std::string app = argc > 1 ? argv[1] : "isolet-like";
  core::TriageWeights weights;
  if (argc > 2) weights.accuracy = std::atof(argv[2]);

  std::cout << "== Design-space triage (Sec. VII top-down flow) ==\n"
            << "application: " << app << ", accuracy weight: " << weights.accuracy << "\n\n";

  const core::AppProfile profile = core::profile_for(app);
  const auto enumerated = core::enumerate_design_space(app, /*include_culled=*/true);

  // The cull report: what the framework eliminated before spending any
  // evaluation effort, and why.
  std::size_t culled = 0;
  for (const auto& ep : enumerated)
    if (ep.culled_because) ++culled;
  std::cout << enumerated.size() << " combinations enumerated, " << culled
            << " culled structurally.\n\n";

  core::Evaluator evaluator;
  // Parallel, memoised sweep: XLDS_THREADS controls the pool width; results
  // are bit-identical at any setting.
  const auto foms = evaluator.evaluate_all(enumerated, profile);
  std::vector<core::ScoredPoint> scored;
  for (std::size_t i = 0; i < enumerated.size(); ++i) {
    if (enumerated[i].culled_because) continue;
    scored.push_back(core::ScoredPoint{enumerated[i].point, foms[i]});
  }

  const auto front = core::pareto_front(scored);
  const auto ranking = core::triage_ranking(scored, weights);

  core::ShortlistOptions options;
  options.max_rows = 8;
  options.include_note = false;
  std::cout << core::format_shortlist(scored, ranking, front, options);
  std::cout << "\nThe shortlist above is where a deep dive (the functional simulators in\n"
               "xlds::cam / xlds::xbar, or the system simulator in xlds::sim) would start.\n"
               "Try './design_space_triage omniglot-like' for the few-shot workload, or\n"
               "raise the accuracy weight to push software baselines up the ranking.\n";
  return 0;
}
