// Sec.-III case study end-to-end: hyperdimensional classification on a
// FeFET-based in-memory platform.
//
// Flow: synthesize an ISOLET-class dataset -> train an HDC model (3-bit
// quantised elements) -> map the associative-search stage onto the
// subarray-partitioned FeFET MCAM with the paper's measured programming
// variation -> compare accuracy and per-query cost against the software
// model and the GPU platform estimate.
//
//   ./hdc_classification [hv_dim=2048] [bits=3]
#include <cstdlib>
#include <iostream>

#include "arch/hdc_mapping.hpp"
#include "arch/platform.hpp"
#include "hdc/cam_inference.hpp"
#include "hdc/model.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/dataset.hpp"

int main(int argc, char** argv) {
  using namespace xlds;
  const std::size_t hv_dim = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2048;
  const int bits = argc > 2 ? std::atoi(argv[2]) : 3;

  std::cout << "== HDC on FeFET CAMs (Sec. III flow) ==\n"
            << "hypervector length D = " << hv_dim << ", element precision = " << bits
            << " bits\n\n";

  // 1. Workload.
  const workload::Dataset ds = workload::make_named_dataset("isolet-like", 7);
  std::cout << "dataset: " << ds.name << ", " << ds.train_x.size() << " train / "
            << ds.test_x.size() << " test samples\n";

  // 2. Train the HDC model (software).
  Rng rng(42);
  hdc::HdcConfig cfg;
  cfg.hv_dim = hv_dim;
  cfg.element_bits = bits;
  hdc::HdcModel model(cfg, ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  const double sw_acc = model.accuracy(ds.test_x, ds.test_y);
  std::cout << "software accuracy (SE on quantised digits): " << Table::num(sw_acc, 3) << "\n\n";

  // 3. Map the search stage onto the FeFET MCAM.
  hdc::CamInferenceConfig hw;
  hw.subarray.fefet.bits = bits;
  hw.subarray.fefet.sigma_program = 0.094;  // the paper's measured sigma
  hw.subarray.cols = 128;
  hw.subarray.sense_levels = 256;
  hw.subarray.apply_variation = true;
  hw.aggregation = cam::Aggregation::kSumSensed;
  hdc::HdcCamInference cam_inf(model, hw, rng);
  const double hw_acc = cam_inf.accuracy(ds.test_x, ds.test_y);
  const cam::SearchCost search = cam_inf.search_cost();

  std::cout << "FeFET CAM accuracy (94 mV programming sigma): " << Table::num(hw_acc, 3) << '\n'
            << "  subarrays: " << cam_inf.segments() << " x " << hw.subarray.cols << " cells\n"
            << "  search latency: " << si_format(search.latency, "s", 2)
            << ", energy: " << si_format(search.energy, "J", 2) << "\n\n";

  // 4. The GPU estimate for the same workload (batch 1 — edge deployment).
  arch::HdcWorkload w;
  w.input_dim = ds.dim;
  w.hv_dim = hv_dim;
  w.am_entries = ds.train_x.size();
  const arch::KernelCost gpu_cost = arch::hdc_gpu_inference(arch::gpu(), w, 1);
  std::cout << "GPU platform estimate (batch 1): " << si_format(gpu_cost.latency, "s", 2)
            << " per query\n"
            << "CAM search advantage: "
            << Table::num(gpu_cost.latency / search.latency, 0) << "x\n\n";

  std::cout << "Interpretation: iso-accuracy holds at the measured variation (" << hw_acc
            << " vs " << sw_acc << " software) while the in-memory search sidesteps the\n"
            << "transfer+launch overheads that dominate small-batch GPU inference.\n";
  return 0;
}
