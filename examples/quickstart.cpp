// Quickstart: the XLDS framework in ~60 lines.
//
// Build a design point (device x architecture x algorithm x application),
// evaluate its figures of merit analytically, and compare it against the
// GPU software baseline — the smallest end-to-end use of the library.
//
//   ./quickstart
#include <iostream>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"
#include "util/units.hpp"

int main() {
  using namespace xlds;

  // 1. Pick the application and get its workload profile.
  const core::AppProfile profile = core::profile_for("isolet-like");
  std::cout << "Application: " << profile.name << " (" << profile.input_dim << "-d, "
            << profile.n_classes << " classes)\n\n";

  // 2. Describe two candidate design points.
  core::DesignPoint baseline;
  baseline.device = device::DeviceKind::kSram;  // device axis collapses on GPUs
  baseline.arch = core::ArchKind::kGpu;
  baseline.algo = core::AlgoKind::kHdc;
  baseline.application = profile.name;

  core::DesignPoint candidate;
  candidate.device = device::DeviceKind::kFeFet;
  candidate.arch = core::ArchKind::kCamXbarHybrid;  // the Sec.-III design
  candidate.algo = core::AlgoKind::kHdc;
  candidate.application = profile.name;

  // 3. Check structural compatibility (the Fig. 1 culls).
  for (const core::DesignPoint& p : {baseline, candidate}) {
    if (auto reason = core::incompatibility(p)) {
      std::cout << p.to_string() << " is culled: " << *reason << '\n';
      return 1;
    }
  }

  // 4. Evaluate figures of merit.
  const core::Evaluator evaluator;
  for (const core::DesignPoint& p : {baseline, candidate}) {
    const core::Fom fom = evaluator.evaluate(p, profile);
    std::cout << p.to_string() << '\n'
              << "  latency/query : " << si_format(fom.latency, "s", 2) << '\n'
              << "  energy/query  : " << si_format(fom.energy, "J", 2) << '\n'
              << "  accelerator   : " << fixed_format(fom.area_mm2, 3) << " mm^2\n"
              << "  est. accuracy : " << fixed_format(fom.accuracy, 3) << '\n'
              << "  note          : " << fom.note << "\n\n";
  }

  const double speedup = evaluator.evaluate(baseline, profile).latency /
                         evaluator.evaluate(candidate, profile).latency;
  std::cout << "Technology-enabled speedup at batch 1: " << fixed_format(speedup, 0) << "x\n"
            << "Next: run the benches in build/bench/ to regenerate every figure of the "
               "paper.\n";
  return 0;
}
