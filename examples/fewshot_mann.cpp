// Sec.-IV case study end-to-end: few-shot learning with a memory-augmented
// neural network where hashing and associative search run on RRAM.
//
// Flow: pre-train a small CNN feature extractor on background classes ->
// run N-way k-shot episodes with three backends (software cosine, RRAM
// binary LSH, RRAM ternary LSH) -> report accuracies and the hardware cost
// of one query.
//
//   ./fewshot_mann [n_way=5] [k_shot=1] [episodes=20]
#include <cstdlib>
#include <iostream>

#include "arch/mann_mapping.hpp"
#include "arch/platform.hpp"
#include "mann/mann.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/fewshot.hpp"

int main(int argc, char** argv) {
  using namespace xlds;
  const std::size_t n_way = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;
  const std::size_t k_shot = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1;
  const std::size_t episodes = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 20;

  std::cout << "== Few-shot MANN on RRAM (Sec. IV flow) ==\n"
            << n_way << "-way " << k_shot << "-shot, " << episodes << " episodes\n\n";

  workload::FewShotSpec fs;
  fs.image_side = 20;
  fs.n_classes = 60;

  auto make_config = [&](mann::Backend backend) {
    mann::MannConfig cfg;
    cfg.image_side = fs.image_side;
    cfg.embedding = 64;
    cfg.signature_bits = 128;  // the prototype's hash length
    cfg.backend = backend;
    cfg.tlsh_threshold = 0.3;
    cfg.hash_xbar.rows = cfg.embedding;
    cfg.hash_xbar.cols = 2 * cfg.signature_bits;
    cfg.am.cols = cfg.signature_bits;
    cfg.relaxation_s = 3600.0;  // an hour between writing and querying
    return cfg;
  };

  Table table({"backend", "episode accuracy", "X-bit fraction"});
  double dc_fraction = 0.0;
  for (mann::Backend backend : {mann::Backend::kSoftwareCosine, mann::Backend::kRramLsh,
                                mann::Backend::kRramTlsh}) {
    workload::FewShotGenerator pretrain_gen(fs, 500);
    Rng rng(501);
    mann::MannPipeline pipe(make_config(backend), rng);
    pipe.pretrain(pretrain_gen, 10, 12, 12, 0.001);

    workload::FewShotGenerator eval_gen(fs, 502);
    double acc_sum = 0.0, dc_sum = 0.0;
    for (std::size_t e = 0; e < episodes; ++e) {
      const mann::EpisodeResult res =
          pipe.run_episode(eval_gen.sample_episode(n_way, k_shot, 3));
      acc_sum += res.accuracy;
      dc_sum += res.mean_dont_care;
    }
    const double acc = acc_sum / static_cast<double>(episodes);
    if (backend == mann::Backend::kRramTlsh) dc_fraction = dc_sum / episodes;
    table.add_row({to_string(backend), Table::num(acc, 3),
                   backend == mann::Backend::kRramTlsh
                       ? Table::num(dc_sum / episodes, 3)
                       : std::string("-")});
  }
  std::cout << table << '\n';

  // Hardware cost of one query on the RRAM pipeline.
  Rng rng(510);
  mann::MannPipeline pipe(make_config(mann::Backend::kRramTlsh), rng);
  const cam::SearchCost query = pipe.hardware_query_cost(n_way * k_shot);
  std::cout << "RRAM hash+search cost per query: " << si_format(query.latency, "s", 2) << ", "
            << si_format(query.energy, "J", 2) << '\n'
            << "CNN feature extraction: " << pipe.cnn_macs() << " MACs (crossbar-mappable)\n"
            << "TLSH stores " << Table::num(100.0 * dc_fraction, 1)
            << " % don't-care bits — the Fig. 4C stability lever.\n";
  return 0;
}
