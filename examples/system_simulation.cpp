// Sec.-V flow: run the event-driven system simulator with and without an
// integrated analog-crossbar accelerator and report where the time goes.
//
//   ./system_simulation [workload=cnn|lstm|transformer] [conv_depth=6]
#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "xbar/crossbar.hpp"

int main(int argc, char** argv) {
  using namespace xlds;
  const std::string workload = argc > 1 ? argv[1] : "cnn";
  const std::size_t depth = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;

  sim::Program program;
  if (workload == "cnn") {
    program = sim::make_cnn_program(sim::cifar_cnn(depth));
  } else if (workload == "lstm") {
    program = sim::make_lstm_program(sim::LstmSpec{});
  } else if (workload == "transformer") {
    program = sim::make_transformer_program(sim::TransformerSpec{});
  } else {
    std::cerr << "unknown workload '" << workload << "' (cnn|lstm|transformer)\n";
    return 1;
  }

  std::cout << "== System simulation (Sec. V flow): " << workload << " ==\n"
            << "program: " << program.size() << " ops, "
            << si_format(static_cast<double>(sim::program_macs(program)), "MAC", 2) << "\n\n";

  const sim::CoreConfig core{.freq_hz = 2.0e9, .ipc = 2.0, .macs_per_cycle = 4.0};
  const sim::CacheConfig l1{.name = "L1", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 4,
                            .hit_latency_s = 0.5e-9};
  const sim::CacheConfig l2{.name = "L2", .size_bytes = 1024 * 1024, .line_bytes = 64, .ways = 8,
                            .hit_latency_s = 5e-9};

  // The accelerator's per-tile MVM cost comes from the analog crossbar model.
  Rng rng(1);
  xbar::CrossbarConfig tile;
  tile.rows = 64;
  tile.cols = 64;
  tile.apply_variation = false;
  tile.read_noise_rel = 0.0;
  sim::AcceleratorConfig accel;
  accel.present = true;
  accel.tile_cost = xbar::Crossbar(tile, rng).mvm_cost();

  Table table({"configuration", "total", "core compute", "memory", "core MVM", "accel busy",
               "offload", "L1 hit", "DRAM traffic", "events"});
  auto report = [&](const char* name, const sim::RunStats& s) {
    table.add_row({name, si_format(s.total_time, "s", 2), si_format(s.compute_time, "s", 2),
                   si_format(s.memory_time, "s", 2), si_format(s.mvm_core_time, "s", 2),
                   si_format(s.accel_time, "s", 2), si_format(s.transfer_time, "s", 2),
                   Table::num(100.0 * s.l1_hit_rate, 1) + " %",
                   si_format(static_cast<double>(s.dram_bytes), "B", 1),
                   std::to_string(s.events)});
  };

  sim::Machine baseline(core, l1, l2, sim::DramConfig{}, sim::AcceleratorConfig{});
  const sim::RunStats s0 = baseline.run(program);
  report("core only", s0);

  sim::Machine accelerated(core, l1, l2, sim::DramConfig{}, accel);
  const sim::RunStats s1 = accelerated.run(program);
  report("core + crossbar accel", s1);

  std::cout << table;
  std::cout << "\nSpeedup: " << Table::num(s0.total_time / s1.total_time, 1) << "x ("
            << s1.offloads << " offloads).\n"
            << "The residual time in the accelerated run is the Amdahl tail: im2col/\n"
            << "reshape memory traffic, activations and offload transfers.\n";
  return 0;
}
